//! The graph registry: several resident indexes in one server process.
//!
//! PR 1 made a single [`ScanIndex`] resident behind a [`QueryEngine`];
//! this module generalizes that to a *named collection* of resident
//! engines, treating index memory as the scarce resource it is on a
//! serving box:
//!
//! - **Admission / eviction.** Every graph's footprint is estimated with
//!   [`ScanIndex::memory_bytes`] (the paper's `O(m)` space claim made
//!   operational). When a configured byte budget would be exceeded, the
//!   registry evicts least-recently-*queried* graphs until the newcomer
//!   fits; the default (boot) graph is pinned against eviction, and a
//!   graph that could never fit — even with everything else evicted — is
//!   rejected outright.
//! - **Load coalescing.** Concurrent `LOAD`s of the same name build the
//!   index once: the first caller becomes the leader, everyone else
//!   blocks on its outcome ([`LoadOutcome::Coalesced`]). This is the
//!   registry-level sibling of the per-`(μ, ε-class)` query coalescing
//!   in [`engine`](crate::engine).
//! - **Observability.** Monotonic counters ([`RegistryStats`]) for
//!   loads, coalesced loads, failures, unloads, and evictions, surfaced
//!   through the protocol's `STATS` response.
//!
//! Eviction drops the registry's `Arc` to the engine; the memory is
//! actually reclaimed when the last in-flight query on that engine
//! finishes, so a busy graph never has the index freed under it.
//!
//! # Examples
//!
//! ```
//! use parscan_server::{GraphRegistry, RegistryConfig};
//! use parscan_core::{IndexConfig, QueryParams, ScanIndex};
//!
//! let registry = GraphRegistry::new("boot", RegistryConfig::default());
//! let (g, _) = parscan_graph::generators::planted_partition(120, 3, 8.0, 1.0, 7);
//! registry.install("boot", ScanIndex::build(g, IndexConfig::default())).unwrap();
//!
//! // Queries address graphs by name; `None` means the default graph.
//! let (name, engine) = registry.get(None).unwrap();
//! assert_eq!(name, "boot");
//! assert!(engine.cluster(QueryParams::new(2, 0.3)).clustering.num_clusters() > 0);
//! assert_eq!(registry.list().len(), 1);
//! ```

use crate::coalesce::Cell;
use crate::engine::{EngineConfig, QueryEngine};
use crate::{lock_mutex, read_lock, write_lock};
use parscan_core::{IndexConfig, ScanIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Completion callback for [`GraphRegistry::load_path_deferred`].
pub type LoadCallback =
    Box<dyn FnOnce(Result<(Arc<QueryEngine>, LoadOutcome), RegistryError>) + Send>;

/// Registry construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Total bytes of resident index memory the registry may hold
    /// (estimated via [`ScanIndex::memory_bytes`]); `None` is unlimited.
    pub byte_budget: Option<usize>,
    /// Maximum number of resident graphs (LRU-evicted like bytes).
    pub max_graphs: usize,
    /// Engine configuration applied to every hosted graph.
    pub engine: EngineConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            byte_budget: None,
            max_graphs: 64,
            engine: EngineConfig::default(),
        }
    }
}

/// Why a registry operation failed. Rendered into protocol error
/// responses verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No graph with this name is resident.
    NotFound { name: String },
    /// The graph is currently being loaded by another session.
    Loading { name: String },
    /// The graph can never fit: its footprint alone exceeds the budget,
    /// or everything evictable has been evicted and it still does not fit.
    BudgetExceeded {
        name: String,
        bytes: usize,
        budget: usize,
    },
    /// The graph-count budget is exhausted and nothing is evictable.
    TooManyGraphs { name: String, max_graphs: usize },
    /// Building or reading the index failed.
    LoadFailed { name: String, message: String },
    /// The graph name is syntactically invalid (see [`validate_graph_name`]).
    BadName { name: String, message: String },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound { name } => write!(f, "no graph named {name:?} is loaded"),
            RegistryError::Loading { name } => {
                write!(f, "graph {name:?} is still loading; retry shortly")
            }
            RegistryError::BudgetExceeded { name, bytes, budget } => write!(
                f,
                "graph {name:?} ({bytes} bytes) does not fit the registry byte budget ({budget} bytes)"
            ),
            RegistryError::TooManyGraphs { name, max_graphs } => write!(
                f,
                "cannot load graph {name:?}: the registry already holds its maximum of {max_graphs} graph(s)"
            ),
            RegistryError::LoadFailed { name, message } => {
                write!(f, "loading graph {name:?} failed: {message}")
            }
            RegistryError::BadName { name, message } => {
                write!(f, "bad graph name {name:?}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// How a [`GraphRegistry::load_with`] call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// This call built and admitted the graph.
    Loaded,
    /// The graph was already resident; nothing was built.
    AlreadyLoaded,
    /// Another session was mid-load; this call waited for its result.
    Coalesced,
}

/// A point-in-time description of one resident graph.
#[derive(Clone, Debug)]
pub struct GraphInfo {
    pub name: String,
    pub vertices: usize,
    pub edges: usize,
    /// Estimated index footprint ([`ScanIndex::memory_bytes`]).
    pub bytes: usize,
    /// Distinct ε breakpoints (the engine's cache-class count).
    pub breakpoints: usize,
    /// Whether this is the registry's default graph.
    pub is_default: bool,
}

/// Monotonic registry counters plus current residency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Graphs currently resident (excluding in-flight loads).
    pub graphs: usize,
    /// Loads currently in flight.
    pub loading: usize,
    /// Estimated bytes of resident index memory.
    pub bytes_resident: usize,
    /// The configured budget, if any.
    pub byte_budget: Option<usize>,
    /// Successful admissions.
    pub loads: u64,
    /// Load calls that waited on another session's in-flight load.
    pub coalesced_loads: u64,
    /// Loads that failed (build error or rejected admission).
    pub load_failures: u64,
    /// Explicit `UNLOAD`s.
    pub unloads: u64,
    /// Graphs evicted to make room under the byte/count budget.
    pub evictions: u64,
}

/// Check a graph name for protocol use: 1–64 characters drawn from
/// `[A-Za-z0-9_.-]`. Names appear verbatim in the wire protocol (as
/// `@name` prefixes and `LOAD`/`UNLOAD` arguments), so whitespace and
/// exotic characters are rejected at the door.
pub fn validate_graph_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("empty name".into());
    }
    if name.len() > 64 {
        return Err(format!("name longer than 64 bytes ({})", name.len()));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')))
    {
        return Err(format!(
            "character {bad:?} not allowed (use [A-Za-z0-9_.-])"
        ));
    }
    Ok(())
}

/// One resident graph.
struct GraphEntry {
    engine: Arc<QueryEngine>,
    bytes: usize,
    /// Global tick of the most recent query/lookup; the eviction victim
    /// is the Ready entry with the smallest tick.
    last_used: AtomicU64,
}

/// The once-cell a load leader publishes through — the shared
/// [`coalesce::Cell`](crate::coalesce::Cell) machinery, so followers can
/// either block ([`Cell::wait`]) or subscribe a completion callback
/// ([`Cell::on_ready`], the reactor path). The registry's slot map is
/// also its residency map, so the cell lives inside [`Slot::Loading`]
/// rather than a separate keyed [`crate::coalesce::Coalescer`]: leader
/// registration must be atomic with the Ready-residency check under one
/// lock.
type LoadCell = Cell<Result<Arc<GraphEntry>, RegistryError>>;

enum Slot {
    Ready(Arc<GraphEntry>),
    Loading(Arc<LoadCell>),
}

/// How a load attempt was classified against the slot map.
enum RegisterLoad {
    /// Name already resident.
    Ready(Arc<QueryEngine>),
    /// Someone else is loading this name; share their outcome.
    Follower(Arc<LoadCell>),
    /// This caller owns the load.
    Leader(Arc<LoadCell>),
}

#[derive(Default)]
struct RegistryCounters {
    loads: AtomicU64,
    coalesced_loads: AtomicU64,
    load_failures: AtomicU64,
    unloads: AtomicU64,
    evictions: AtomicU64,
}

/// Observer invoked with the name of every graph the registry evicts
/// (after the registry lock is released). The server wires this to the
/// durable store's audit log.
pub type EvictHook = Box<dyn Fn(&str) + Send + Sync>;

/// A named collection of resident [`QueryEngine`]s with byte-budgeted
/// LRU admission and coalesced loading. See the module docs.
pub struct GraphRegistry {
    slots: RwLock<HashMap<String, Slot>>,
    default_name: String,
    config: RegistryConfig,
    /// Global recency clock; bumped on every lookup.
    tick: AtomicU64,
    counters: RegistryCounters,
    evict_hook: Mutex<Option<EvictHook>>,
}

impl GraphRegistry {
    /// An empty registry whose unnamed queries resolve to `default_name`
    /// (install that graph with [`GraphRegistry::install`]).
    pub fn new(default_name: impl Into<String>, config: RegistryConfig) -> Self {
        GraphRegistry {
            slots: RwLock::new(HashMap::new()),
            default_name: default_name.into(),
            config,
            tick: AtomicU64::new(0),
            counters: RegistryCounters::default(),
            evict_hook: Mutex::new(None),
        }
    }

    /// Install an eviction observer (replacing any previous one). The
    /// hook runs outside the registry lock, once per victim, after the
    /// admission that displaced it completes.
    pub fn set_evict_hook(&self, hook: EvictHook) {
        *lock_mutex(&self.evict_hook) = Some(hook);
    }

    /// Report evictions to the hook, outside the slots lock.
    fn notify_evicted(&self, victims: &[String]) {
        if victims.is_empty() {
            return;
        }
        let hook = lock_mutex(&self.evict_hook);
        if let Some(hook) = hook.as_ref() {
            for v in victims {
                hook(v);
            }
        }
    }

    /// Convenience: a registry hosting exactly `engine` as its default
    /// graph named `"default"`, with no byte budget. This is the
    /// single-graph serving shape of PR 1.
    pub fn single(engine: Arc<QueryEngine>) -> Arc<Self> {
        let registry = GraphRegistry::new("default", RegistryConfig::default());
        registry
            .install_engine("default", engine)
            .expect("empty registry admits one unbudgeted graph");
        Arc::new(registry)
    }

    /// The name unaddressed queries resolve to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The registry-wide engine configuration.
    pub fn engine_config(&self) -> EngineConfig {
        self.config.engine
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Resolve `name` (or the default graph for `None`) to its engine,
    /// refreshing its recency. Errors if the graph is absent or still
    /// loading.
    pub fn get(&self, name: Option<&str>) -> Result<(String, Arc<QueryEngine>), RegistryError> {
        let name = name.unwrap_or(&self.default_name);
        let slots = read_lock(&self.slots);
        match slots.get(name) {
            Some(Slot::Ready(entry)) => {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                Ok((name.to_string(), Arc::clone(&entry.engine)))
            }
            Some(Slot::Loading(_)) => Err(RegistryError::Loading { name: name.into() }),
            None => Err(RegistryError::NotFound { name: name.into() }),
        }
    }

    /// Install an already-built index under `name` (the boot path and
    /// the programmatic API; protocol `LOAD`s go through
    /// [`GraphRegistry::load_with`]). Replaces nothing: loading over an
    /// existing name is reported as [`LoadOutcome::AlreadyLoaded`] by
    /// `load_with`, and `install` on an existing name is an error via
    /// admission of a duplicate — call [`GraphRegistry::unload`] first.
    pub fn install(
        &self,
        name: impl Into<String>,
        index: ScanIndex,
    ) -> Result<Arc<QueryEngine>, RegistryError> {
        self.install_with_config(name, index, self.config.engine)
    }

    /// [`GraphRegistry::install`] with a per-graph engine configuration
    /// (warm boots use this to restore each graph's persisted cache
    /// capacity).
    pub fn install_with_config(
        &self,
        name: impl Into<String>,
        index: ScanIndex,
        engine_config: EngineConfig,
    ) -> Result<Arc<QueryEngine>, RegistryError> {
        let engine = Arc::new(QueryEngine::new(Arc::new(index), engine_config));
        self.install_engine(name, engine)
    }

    /// Install a pre-configured engine under `name`.
    pub fn install_engine(
        &self,
        name: impl Into<String>,
        engine: Arc<QueryEngine>,
    ) -> Result<Arc<QueryEngine>, RegistryError> {
        let name = name.into();
        if let Err(message) = validate_graph_name(&name) {
            return Err(RegistryError::BadName { name, message });
        }
        let bytes = engine.index().memory_bytes();
        let entry = Arc::new(GraphEntry {
            engine: Arc::clone(&engine),
            bytes,
            last_used: AtomicU64::new(self.next_tick()),
        });
        let mut slots = write_lock(&self.slots);
        match slots.get(&name) {
            Some(Slot::Ready(_)) => {
                return Err(RegistryError::LoadFailed {
                    name,
                    message: "a graph with this name is already loaded (UNLOAD it first)".into(),
                })
            }
            Some(Slot::Loading(_)) => return Err(RegistryError::Loading { name }),
            None => {}
        }
        let victims = self.admit_locked(&mut slots, &name, entry)?;
        self.counters.loads.fetch_add(1, Ordering::Relaxed);
        drop(slots);
        self.notify_evicted(&victims);
        Ok(engine)
    }

    /// Admit `entry` under `name`, evicting least-recently-used
    /// non-default graphs until both the byte budget and the graph-count
    /// budget hold. Caller holds the write lock and has verified the
    /// name is free. Returns the evicted names; the caller reports them
    /// via [`GraphRegistry::notify_evicted`] once the lock is released.
    fn admit_locked(
        &self,
        slots: &mut HashMap<String, Slot>,
        name: &str,
        entry: Arc<GraphEntry>,
    ) -> Result<Vec<String>, RegistryError> {
        let mut victims = Vec::new();
        let budget = self.config.byte_budget;
        if let Some(budget) = budget {
            if entry.bytes > budget {
                return Err(RegistryError::BudgetExceeded {
                    name: name.into(),
                    bytes: entry.bytes,
                    budget,
                });
            }
        }
        loop {
            let resident: usize = slots
                .values()
                .filter_map(|s| match s {
                    Slot::Ready(e) => Some(e.bytes),
                    Slot::Loading(_) => None,
                })
                .sum();
            let ready_count = slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(_)))
                .count();
            let bytes_ok = budget.is_none_or(|b| resident + entry.bytes <= b);
            let count_ok = ready_count < self.config.max_graphs;
            if bytes_ok && count_ok {
                break;
            }
            // Evict the least-recently-queried Ready graph; the default
            // graph is pinned (only an explicit UNLOAD removes it).
            let victim = slots
                .iter()
                .filter_map(|(n, s)| match s {
                    Slot::Ready(e) if n != &self.default_name => {
                        Some((n.clone(), e.last_used.load(Ordering::Relaxed)))
                    }
                    _ => None,
                })
                .min_by_key(|&(_, tick)| tick)
                .map(|(n, _)| n);
            let Some(victim) = victim else {
                // Report the budget that actually failed: bytes when the
                // footprint does not fit, otherwise the graph count.
                return Err(if bytes_ok {
                    RegistryError::TooManyGraphs {
                        name: name.into(),
                        max_graphs: self.config.max_graphs,
                    }
                } else {
                    RegistryError::BudgetExceeded {
                        name: name.into(),
                        bytes: entry.bytes,
                        budget: budget.expect("bytes only fail under a byte budget"),
                    }
                });
            };
            slots.remove(&victim);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            victims.push(victim);
        }
        slots.insert(name.to_string(), Slot::Ready(entry));
        Ok(victims)
    }

    /// Load a graph under `name`, building the index with `build` only
    /// if nobody else is: an already-resident name returns immediately
    /// ([`LoadOutcome::AlreadyLoaded`]) and a concurrent load of the
    /// same name blocks on the leader's outcome
    /// ([`LoadOutcome::Coalesced`]) instead of building twice.
    pub fn load_with<F>(
        &self,
        name: &str,
        build: F,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError>
    where
        F: FnOnce() -> Result<ScanIndex, String>,
    {
        self.load_with_config(name, self.config.engine, build)
    }

    /// [`GraphRegistry::load_with`] with a per-graph engine
    /// configuration (the protocol's `LOAD … CACHE=<n>` option).
    pub fn load_with_config<F>(
        &self,
        name: &str,
        engine_config: EngineConfig,
        build: F,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError>
    where
        F: FnOnce() -> Result<ScanIndex, String>,
    {
        if let Err(message) = validate_graph_name(name) {
            return Err(RegistryError::BadName {
                name: name.into(),
                message,
            });
        }
        // Phase 1: register as leader, join as follower, or return early.
        match self.register_load(name) {
            RegisterLoad::Ready(engine) => Ok((engine, LoadOutcome::AlreadyLoaded)),
            RegisterLoad::Follower(cell) => {
                self.counters
                    .coalesced_loads
                    .fetch_add(1, Ordering::Relaxed);
                Self::follower_outcome(name, cell.wait())
            }
            RegisterLoad::Leader(cell) => self.lead_load(name, cell, engine_config, build),
        }
    }

    /// Classify a load attempt against the slot map (one write lock).
    fn register_load(&self, name: &str) -> RegisterLoad {
        let mut slots = write_lock(&self.slots);
        match slots.get(name) {
            Some(Slot::Ready(entry)) => {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                RegisterLoad::Ready(Arc::clone(&entry.engine))
            }
            Some(Slot::Loading(cell)) => RegisterLoad::Follower(Arc::clone(cell)),
            None => {
                let cell = Arc::new(LoadCell::new());
                slots.insert(name.to_string(), Slot::Loading(Arc::clone(&cell)));
                RegisterLoad::Leader(cell)
            }
        }
    }

    /// Translate a follower's settled cell into the load result. `None`
    /// (the cell was cancelled rather than published) cannot happen with
    /// the guard in [`Self::lead_load`], which always publishes a value;
    /// it is mapped to the same abandonment error for safety.
    fn follower_outcome(
        name: &str,
        outcome: Option<Result<Arc<GraphEntry>, RegistryError>>,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError> {
        match outcome {
            Some(Ok(entry)) => Ok((Arc::clone(&entry.engine), LoadOutcome::Coalesced)),
            Some(Err(e)) => Err(e),
            None => Err(RegistryError::LoadFailed {
                name: name.into(),
                message: "load was abandoned".into(),
            }),
        }
    }

    /// Phase 2 (leader): build outside any lock, then admit. The guard
    /// guarantees followers are woken and the Loading slot is removed
    /// even if `build` unwinds.
    fn lead_load<F>(
        &self,
        name: &str,
        cell: Arc<LoadCell>,
        engine_config: EngineConfig,
        build: F,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError>
    where
        F: FnOnce() -> Result<ScanIndex, String>,
    {
        struct LoadGuard<'r> {
            registry: &'r GraphRegistry,
            name: String,
            cell: Arc<LoadCell>,
            done: bool,
        }
        impl LoadGuard<'_> {
            fn publish(&mut self, outcome: Result<Arc<GraphEntry>, RegistryError>) {
                self.done = true;
                self.cell.resolve(Some(outcome));
            }
        }
        impl Drop for LoadGuard<'_> {
            fn drop(&mut self) {
                if !self.done {
                    // Unwound mid-build: clear the Loading slot so the
                    // name becomes loadable again, and fail followers.
                    let mut slots = write_lock(&self.registry.slots);
                    if matches!(slots.get(&self.name), Some(Slot::Loading(_))) {
                        slots.remove(&self.name);
                    }
                    drop(slots);
                    self.cell.resolve(Some(Err(RegistryError::LoadFailed {
                        name: self.name.clone(),
                        message: "load was abandoned".into(),
                    })));
                }
            }
        }
        let mut guard = LoadGuard {
            registry: self,
            name: name.to_string(),
            cell,
            done: false,
        };

        let admit = |index: ScanIndex| -> Result<(Arc<GraphEntry>, Vec<String>), RegistryError> {
            let engine = Arc::new(QueryEngine::new(Arc::new(index), engine_config));
            let entry = Arc::new(GraphEntry {
                bytes: engine.index().memory_bytes(),
                engine,
                last_used: AtomicU64::new(self.next_tick()),
            });
            let mut slots = write_lock(&self.slots);
            // Our Loading marker holds the name; remove it and admit.
            slots.remove(name);
            let victims = self.admit_locked(&mut slots, name, Arc::clone(&entry))?;
            Ok((entry, victims))
        };
        let (outcome, victims) = match build() {
            Ok(index) => match admit(index) {
                Ok((entry, victims)) => (Ok(entry), victims),
                Err(e) => (Err(e), Vec::new()),
            },
            Err(message) => {
                // Build failed: free the name for retries.
                let mut slots = write_lock(&self.slots);
                slots.remove(name);
                drop(slots);
                (
                    Err(RegistryError::LoadFailed {
                        name: name.into(),
                        message,
                    }),
                    Vec::new(),
                )
            }
        };
        guard.publish(outcome.clone());
        self.notify_evicted(&victims);
        match outcome {
            Ok(entry) => {
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
                Ok((Arc::clone(&entry.engine), LoadOutcome::Loaded))
            }
            Err(e) => {
                self.counters.load_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Load a graph or persisted index from a server-local file. File
    /// type is detected by extension exactly as in the CLI: `.pscidx`
    /// (persisted index), `.bin` (parscan binary graph),
    /// `.graph`/`.metis` (METIS), anything else a whitespace edge list.
    /// Graph files are indexed with [`IndexConfig::default`].
    pub fn load_path(
        &self,
        name: &str,
        path: &str,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError> {
        self.load_with(name, || build_index_from_path(path))
    }

    /// [`GraphRegistry::load_path`] with a per-graph engine config.
    pub fn load_path_with_config(
        &self,
        name: &str,
        path: &str,
        engine_config: EngineConfig,
    ) -> Result<(Arc<QueryEngine>, LoadOutcome), RegistryError> {
        self.load_with_config(name, engine_config, || build_index_from_path(path))
    }

    /// Event-driven sibling of [`Self::load_path_with_config`] for the
    /// reactor's worker pool: `notify` fires exactly once — inline on
    /// this thread when the name is resident or this caller leads the
    /// build (the build itself runs synchronously here), later on the
    /// leader's thread when the load coalesces onto someone else's. A
    /// worker thread therefore never parks on another load's progress.
    pub fn load_path_deferred(
        &self,
        name: &str,
        path: &str,
        engine_config: EngineConfig,
        notify: LoadCallback,
    ) {
        if let Err(message) = validate_graph_name(name) {
            return notify(Err(RegistryError::BadName {
                name: name.into(),
                message,
            }));
        }
        match self.register_load(name) {
            RegisterLoad::Ready(engine) => notify(Ok((engine, LoadOutcome::AlreadyLoaded))),
            RegisterLoad::Follower(cell) => {
                self.counters
                    .coalesced_loads
                    .fetch_add(1, Ordering::Relaxed);
                let name = name.to_string();
                cell.on_ready(move |outcome| notify(Self::follower_outcome(&name, outcome)));
            }
            RegisterLoad::Leader(cell) => {
                notify(self.lead_load(name, cell, engine_config, || build_index_from_path(path)))
            }
        }
    }

    /// Remove a graph. Errors while a load of the same name is in
    /// flight. Returns the freed (estimated) bytes. The default graph
    /// *may* be unloaded — subsequent unaddressed queries then error
    /// until it is loaded again.
    pub fn unload(&self, name: &str) -> Result<usize, RegistryError> {
        let mut slots = write_lock(&self.slots);
        match slots.get(name) {
            Some(Slot::Ready(entry)) => {
                let bytes = entry.bytes;
                slots.remove(name);
                self.counters.unloads.fetch_add(1, Ordering::Relaxed);
                Ok(bytes)
            }
            Some(Slot::Loading(_)) => Err(RegistryError::Loading { name: name.into() }),
            None => Err(RegistryError::NotFound { name: name.into() }),
        }
    }

    /// Describe every resident graph, sorted by name.
    pub fn list(&self) -> Vec<GraphInfo> {
        let slots = read_lock(&self.slots);
        let mut infos: Vec<GraphInfo> = slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Ready(entry) => {
                    let index = entry.engine.index();
                    let g = index.graph();
                    Some(GraphInfo {
                        name: name.clone(),
                        vertices: g.num_vertices(),
                        edges: g.num_edges(),
                        bytes: entry.bytes,
                        breakpoints: entry.engine.num_breakpoints(),
                        is_default: name == &self.default_name,
                    })
                }
                Slot::Loading(_) => None,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Snapshot residency and the monotonic counters.
    pub fn stats(&self) -> RegistryStats {
        let slots = read_lock(&self.slots);
        let mut graphs = 0usize;
        let mut loading = 0usize;
        let mut bytes_resident = 0usize;
        for slot in slots.values() {
            match slot {
                Slot::Ready(e) => {
                    graphs += 1;
                    bytes_resident += e.bytes;
                }
                Slot::Loading(_) => loading += 1,
            }
        }
        RegistryStats {
            graphs,
            loading,
            bytes_resident,
            byte_budget: self.config.byte_budget,
            loads: self.counters.loads.load(Ordering::Relaxed),
            coalesced_loads: self.counters.coalesced_loads.load(Ordering::Relaxed),
            load_failures: self.counters.load_failures.load(Ordering::Relaxed),
            unloads: self.counters.unloads.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Extension-dispatched index construction for [`GraphRegistry::load_path`].
fn build_index_from_path(path: &str) -> Result<ScanIndex, String> {
    if path.ends_with(".pscidx") {
        return ScanIndex::load(path).map_err(|e| format!("cannot load index {path}: {e}"));
    }
    let load = if path.ends_with(".bin") {
        parscan_graph::io::read_binary(path)
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        parscan_graph::metis::read_metis(path)
    } else {
        parscan_graph::io::read_edge_list_text(path, None)
    };
    let g = load.map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(ScanIndex::build(g, IndexConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::QueryParams;
    use parscan_graph::generators;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn small_index(seed: u64) -> ScanIndex {
        let (g, _) = generators::planted_partition(120, 3, 8.0, 1.0, seed);
        ScanIndex::build(g, IndexConfig::default())
    }

    fn index_bytes() -> usize {
        small_index(1).memory_bytes()
    }

    #[test]
    fn name_validation() {
        assert!(validate_graph_name("web-2024.v1_final").is_ok());
        assert!(validate_graph_name("").is_err());
        assert!(validate_graph_name("has space").is_err());
        assert!(validate_graph_name("semi;colon").is_err());
        assert!(validate_graph_name(&"x".repeat(65)).is_err());
        let r = GraphRegistry::new("d", RegistryConfig::default());
        assert!(matches!(
            r.install("bad name", small_index(1)),
            Err(RegistryError::BadName { .. })
        ));
    }

    #[test]
    fn default_resolution_and_named_lookup() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        r.install("main", small_index(1)).unwrap();
        r.install("other", small_index(2)).unwrap();
        let (name, _) = r.get(None).unwrap();
        assert_eq!(name, "main");
        let (name, engine) = r.get(Some("other")).unwrap();
        assert_eq!(name, "other");
        assert!(!engine
            .cluster(QueryParams::new(2, 0.3))
            .clustering
            .labels
            .is_empty());
        assert!(matches!(
            r.get(Some("absent")),
            Err(RegistryError::NotFound { .. })
        ));
        let infos = r.list();
        assert_eq!(infos.len(), 2);
        assert!(infos.iter().any(|i| i.name == "main" && i.is_default));
        assert!(infos.iter().any(|i| i.name == "other" && !i.is_default));
    }

    #[test]
    fn duplicate_install_is_rejected_until_unload() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        r.install("main", small_index(1)).unwrap();
        assert!(r.install("main", small_index(2)).is_err());
        let freed = r.unload("main").unwrap();
        assert!(freed > 0);
        r.install("main", small_index(2)).unwrap();
        assert!(matches!(
            r.unload("gone"),
            Err(RegistryError::NotFound { .. })
        ));
        assert_eq!(r.stats().unloads, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_and_pins_default() {
        let one = index_bytes();
        // Room for the default plus two extras.
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                byte_budget: Some(3 * one + one / 2),
                ..Default::default()
            },
        );
        r.install("boot", small_index(1)).unwrap();
        r.install("a", small_index(2)).unwrap();
        r.install("b", small_index(3)).unwrap();
        assert_eq!(r.stats().graphs, 3);
        // Touch "a" so "b" is the LRU victim.
        r.get(Some("a")).unwrap();
        r.install("c", small_index(4)).unwrap();
        let names: Vec<String> = r.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, ["a", "boot", "c"], "b was LRU and must go");
        assert_eq!(r.stats().evictions, 1);
        // The default graph is pinned: filling the registry repeatedly
        // never evicts it.
        for (i, name) in ["d", "e", "f"].iter().enumerate() {
            r.install(*name, small_index(10 + i as u64)).unwrap();
        }
        assert!(r.get(None).is_ok(), "default graph must survive pressure");
        let stats = r.stats();
        assert!(stats.bytes_resident <= stats.byte_budget.unwrap());
    }

    #[test]
    fn impossible_admission_is_rejected() {
        let one = index_bytes();
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                byte_budget: Some(one / 2), // smaller than any index
                ..Default::default()
            },
        );
        let err = r.install("boot", small_index(1)).unwrap_err();
        assert!(matches!(err, RegistryError::BudgetExceeded { .. }), "{err}");
        assert_eq!(r.stats().graphs, 0);
        // Budget for exactly one: the default fits, a second non-default
        // install evicts nothing (only the pinned default is resident)
        // and is rejected.
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                byte_budget: Some(one + one / 2),
                ..Default::default()
            },
        );
        r.install("boot", small_index(1)).unwrap();
        let err = r.install("big", small_index(2)).unwrap_err();
        assert!(matches!(err, RegistryError::BudgetExceeded { .. }), "{err}");
        assert!(r.get(None).is_ok());
    }

    #[test]
    fn max_graphs_budget_evicts_by_count() {
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                max_graphs: 2,
                ..Default::default()
            },
        );
        r.install("boot", small_index(1)).unwrap();
        r.install("a", small_index(2)).unwrap();
        r.install("b", small_index(3)).unwrap();
        assert_eq!(r.stats().graphs, 2);
        assert!(r.get(Some("a")).is_err(), "a was LRU and must be evicted");
        assert!(r.get(Some("b")).is_ok());
        assert!(r.get(None).is_ok());

        // With only the pinned default resident and max_graphs 1, a new
        // install has no victim: the error names the count budget, not a
        // phantom byte budget.
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                max_graphs: 1,
                ..Default::default()
            },
        );
        r.install("boot", small_index(1)).unwrap();
        let err = r.install("extra", small_index(2)).unwrap_err();
        assert!(matches!(err, RegistryError::TooManyGraphs { .. }), "{err}");
        assert!(err.to_string().contains("maximum of 1"), "{err}");
    }

    #[test]
    fn evict_hook_observes_victims() {
        let one = index_bytes();
        let r = GraphRegistry::new(
            "boot",
            RegistryConfig {
                byte_budget: Some(2 * one + one / 2),
                ..Default::default()
            },
        );
        let evicted = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&evicted);
        r.set_evict_hook(Box::new(move |name| {
            sink.lock().unwrap().push(name.to_string());
        }));
        r.install("boot", small_index(1)).unwrap();
        r.install("a", small_index(2)).unwrap();
        r.install("b", small_index(3)).unwrap(); // evicts "a" (LRU)
        assert_eq!(evicted.lock().unwrap().as_slice(), ["a".to_string()]);
    }

    #[test]
    fn per_load_engine_config_overrides_cache_capacity() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        let config = EngineConfig {
            cache_capacity: 16,
            ..r.engine_config()
        };
        let (engine, _) = r
            .load_with_config("g", config, || Ok(small_index(1)))
            .unwrap();
        assert_eq!(engine.stats().cache_capacity, 16);
        // The registry-wide default is unchanged for other graphs.
        let (other, _) = r.load_with("h", || Ok(small_index(2))).unwrap();
        assert_eq!(
            other.stats().cache_capacity,
            RegistryConfig::default().engine.cache_capacity
        );
    }

    #[test]
    fn load_with_reports_already_loaded() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        let (_, outcome) = r.load_with("main", || Ok(small_index(1))).unwrap();
        assert_eq!(outcome, LoadOutcome::Loaded);
        let built_again = AtomicUsize::new(0);
        let (_, outcome) = r
            .load_with("main", || {
                built_again.fetch_add(1, Ordering::Relaxed);
                Ok(small_index(1))
            })
            .unwrap();
        assert_eq!(outcome, LoadOutcome::AlreadyLoaded);
        assert_eq!(built_again.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failed_load_frees_the_name() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        let err = r
            .load_with("g", || Err("synthetic failure".into()))
            .unwrap_err();
        assert!(matches!(err, RegistryError::LoadFailed { .. }), "{err}");
        assert_eq!(r.stats().load_failures, 1);
        // The name is free again; a retry succeeds.
        let (_, outcome) = r.load_with("g", || Ok(small_index(1))).unwrap();
        assert_eq!(outcome, LoadOutcome::Loaded);
    }

    #[test]
    fn abandoned_load_fails_followers_and_frees_the_name() {
        // The leader's build panics mid-flight. Followers (blocking and
        // subscribed) must observe `LoadFailed { "load was abandoned" }`
        // — not park forever — and the name must become loadable again.
        // (Recovery from a *poisoned* cell lock itself is exercised in
        // `coalesce::tests::wait_recovers_from_a_poisoned_cell_lock`;
        // this covers the registry-level consequence of that unwind.)
        let r = Arc::new(GraphRegistry::new("main", RegistryConfig::default()));
        let gate = Arc::new(std::sync::Barrier::new(2));

        let leader = {
            let r = Arc::clone(&r);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = r.load_with("doomed", || {
                    gate.wait(); // followers may now register
                    std::thread::sleep(Duration::from_millis(40));
                    panic!("build exploded")
                });
            })
        };
        gate.wait();

        // Blocking follower.
        let blocking = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || r.load_with("doomed", || Ok(small_index(1))))
        };
        // Subscribed (reactor-path) follower.
        let (tx, rx) = std::sync::mpsc::channel();
        r.load_path_deferred(
            "doomed",
            "/nonexistent/never-read.graph",
            EngineConfig::default(),
            Box::new(move |outcome| {
                tx.send(outcome.map(|(_, o)| o)).unwrap();
            }),
        );

        assert!(leader.join().is_err(), "leader must have panicked");
        let err = blocking.join().unwrap().unwrap_err();
        assert!(
            matches!(&err, RegistryError::LoadFailed { message, .. } if message.contains("abandoned")),
            "{err}"
        );
        let deferred = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let err = deferred.unwrap_err();
        assert!(
            matches!(&err, RegistryError::LoadFailed { message, .. } if message.contains("abandoned")),
            "{err}"
        );

        // The name is free again; a retry succeeds.
        let (_, outcome) = r.load_with("doomed", || Ok(small_index(1))).unwrap();
        assert_eq!(outcome, LoadOutcome::Loaded);
    }

    #[test]
    fn deferred_load_coalesces_onto_an_in_flight_leader() {
        let r = Arc::new(GraphRegistry::new("main", RegistryConfig::default()));
        let gate = Arc::new(std::sync::Barrier::new(2));

        let leader = {
            let r = Arc::clone(&r);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                r.load_with("shared", || {
                    gate.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    Ok(small_index(2))
                })
            })
        };
        gate.wait();

        let (tx, rx) = std::sync::mpsc::channel();
        r.load_path_deferred(
            "shared",
            "/nonexistent/never-read.graph",
            EngineConfig::default(),
            Box::new(move |outcome| {
                tx.send(outcome.map(|(_, o)| o)).unwrap();
            }),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap(),
            LoadOutcome::Coalesced,
            "the deferred follower must ride the leader's build, not read the path"
        );
        assert_eq!(leader.join().unwrap().unwrap().1, LoadOutcome::Loaded);
        assert!(r.stats().coalesced_loads >= 1);
    }

    #[test]
    fn concurrent_loads_of_one_name_build_once() {
        let r = GraphRegistry::new("main", RegistryConfig::default());
        const THREADS: usize = 6;
        let builds = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(THREADS);
        let outcomes: Vec<LoadOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (r, builds, barrier) = (&r, &builds, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        let (_, outcome) = r
                            .load_with("shared", || {
                                builds.fetch_add(1, Ordering::Relaxed);
                                // Widen the in-flight window so followers
                                // genuinely coalesce rather than racing
                                // past a finished load.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                Ok(small_index(9))
                            })
                            .expect("load");
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            builds.load(Ordering::Relaxed),
            1,
            "exactly one build for {THREADS} concurrent LOADs"
        );
        assert_eq!(
            outcomes
                .iter()
                .filter(|&&o| o == LoadOutcome::Loaded)
                .count(),
            1
        );
        let stats = r.stats();
        assert_eq!(stats.loads, 1);
        assert!(stats.coalesced_loads >= 1, "{stats:?}");
        // Exactly one engine is resident and shared.
        let (_, e1) = r.get(Some("shared")).unwrap();
        let (_, e2) = r.get(Some("shared")).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn load_path_round_trips_an_edge_list() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("parscan-registry-{}.txt", std::process::id()));
        let (g, _) = generators::planted_partition(80, 2, 7.0, 1.0, 3);
        parscan_graph::io::write_edge_list_text(&g, &path).unwrap();
        let r = GraphRegistry::new("main", RegistryConfig::default());
        let (engine, outcome) = r
            .load_path("fromfile", path.to_str().unwrap())
            .expect("load from edge list");
        assert_eq!(outcome, LoadOutcome::Loaded);
        assert_eq!(engine.index().graph().num_vertices(), 80);
        assert!(matches!(
            r.load_path("nope", "/definitely/not/here.txt"),
            Err(RegistryError::LoadFailed { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
