//! The TCP serving layer: a readiness-polled reactor (the private
//! `reactor` module) multiplexes every connection on one thread, a small
//! fixed worker pool executes parsed requests, and admission control
//! sheds load past configured bounds instead of queuing it unboundedly.
//!
//! Requests are newline-terminated lines, each resolved against the
//! shared [`GraphRegistry`] (the default graph unless the request
//! carries an `@name` address) and answered with one JSON line. The
//! per-connection state machine lives in the private `conn` module; this
//! module owns the protocol dispatch (`handle_request`), server-wide
//! state, and the public `serve*` entry points. `shutdown()` (or a
//! client's `SHUTDOWN` command) flips the flag and wakes the reactor,
//! which stops accepting, lets the in-flight request finish, flushes
//! buffered responses under a bounded grace, and snapshots dirty graphs
//! before exiting — no response is dropped mid-write.

use crate::batch::BatchExecutor;
use crate::engine::QueryEngine;
use crate::protocol::{FaultStats, ReactorStats, Request, Response, StatsGraph, StoreStats};
use crate::reactor::{Completions, JobQueue, Reactor, ReactorMetrics, ServeConfig};
use crate::registry::{GraphRegistry, LoadOutcome, RegistryError};
use parscan_store::{AuditKind, IndexStore};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared server state: the hosted registry, the optional durable
/// store, and the reactor's counters and queues.
pub(crate) struct ServerShared {
    pub(crate) registry: Arc<GraphRegistry>,
    /// The durable store, when the server was started with one
    /// ([`serve_with_store`]); enables `SAVE` and manifest-aware
    /// `LIST`/`STATS`.
    pub(crate) store: Option<Arc<IndexStore>>,
    pub(crate) shutdown: AtomicBool,
    /// The reactor→worker queue; its depth is admission control's gauge.
    pub(crate) jobs: Arc<JobQueue>,
    pub(crate) metrics: ReactorMetrics,
}

impl ServerShared {
    /// The `STATS` response: registry-wide counters always, plus the
    /// engine counters of the addressed graph. An *explicitly* addressed
    /// absent graph is an error (top-level and batched alike); an
    /// unaddressed `STATS` still reports registry counters even when the
    /// default graph has been unloaded.
    pub(crate) fn stats_response(&self, graph: Option<&str>, session_requests: u64) -> Response {
        let resolved = match graph {
            Some(name) => match self.registry.get(Some(name)) {
                Ok(pair) => Some(pair),
                Err(e) => {
                    return Response::Error {
                        message: e.to_string(),
                    }
                }
            },
            None => self.registry.get(None).ok(),
        };
        let graph = resolved.map(|(name, engine)| {
            let index = engine.index();
            let g = index.graph();
            Box::new(StatsGraph {
                name,
                engine: engine.stats(),
                graph_n: g.num_vertices(),
                graph_m: g.num_edges(),
                breakpoints: engine.num_breakpoints(),
            })
        });
        Response::Stats {
            graph,
            registry: self.registry.stats(),
            store: self.store.as_ref().map(|s| {
                let entries = s.entries();
                StoreStats {
                    persisted: entries.len(),
                    bytes: entries.iter().map(|e| e.bytes).sum(),
                    audit_seq: s.audit_next_seq(),
                }
            }),
            reactor: ReactorStats {
                connections: self.metrics.connections.load(Ordering::Relaxed),
                accepted: self.metrics.accepted.load(Ordering::Relaxed),
                queue_depth: self.jobs.depth(),
                queue_limit: self.metrics.queue_limit,
                shed_requests: self.metrics.shed_requests.load(Ordering::Relaxed),
                shed_connections: self.metrics.shed_connections.load(Ordering::Relaxed),
                workers: self.metrics.workers,
            },
            faults: FaultStats {
                deadline_expired: self.metrics.deadline_expired.load(Ordering::Relaxed),
                idle_reaped: self.metrics.idle_reaped.load(Ordering::Relaxed),
                watchdog_trips: self.metrics.watchdog_trips.load(Ordering::Relaxed),
                stuck_workers: self.metrics.stuck_workers.load(Ordering::Relaxed),
                store_io_errors: self.store.as_ref().map_or(0, |s| s.io_error_count()),
                audit_failures: self.store.as_ref().map_or(0, |s| s.audit_failure_count()),
            },
            session_requests,
        }
    }

    /// Manifest names for `LIST` (`None` on storeless servers).
    fn persisted_names(&self) -> Option<Vec<String>> {
        self.store.as_ref().map(|s| {
            let mut names: Vec<String> = s.entries().into_iter().map(|e| e.name).collect();
            names.sort();
            names
        })
    }
}

/// Snapshot every still-resident graph whose index was mutated since
/// its last `SAVE`. Runs after the reactor has closed every connection
/// and joined every worker — no more mutations can arrive — so a clean
/// shutdown never loses applied updates.
pub(crate) fn autosave_dirty(shared: &ServerShared) {
    if let Some(store) = &shared.store {
        for name in store.dirty_names() {
            let Ok((canonical, engine)) = shared.registry.get(Some(&name)) else {
                continue; // unloaded since the mutation; nothing to save
            };
            let pinned = canonical == shared.registry.default_name();
            let cache_capacity = engine.stats().cache_capacity;
            let _ = store.save(&canonical, &engine.index(), pinned, cache_capacity);
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or send `SHUTDOWN` over a connection and
/// [`ServerHandle::wait`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    completions: Arc<Completions>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0: the OS picks a free port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted registry.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.shared.registry
    }

    /// The default graph's engine. Panics if the default graph has been
    /// unloaded — use [`ServerHandle::registry`] for fallible access.
    pub fn engine(&self) -> Arc<QueryEngine> {
        self.shared
            .registry
            .get(None)
            .expect("default graph is resident")
            .1
    }

    /// Request shutdown and block until the reactor (and every worker it
    /// owns) has exited.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Interrupt the reactor's poll so it notices immediately.
        self.completions.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server stops on its own (a client sent
    /// `SHUTDOWN`).
    pub fn wait(mut self) {
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Bind `addr` and serve every graph in `registry` until shutdown, with
/// default [`ServeConfig`] bounds. Returns once the listener is bound
/// and accepting, so callers may connect immediately.
pub fn serve(
    registry: Arc<GraphRegistry>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    serve_inner(registry, addr, None, ServeConfig::default())
}

/// [`serve`] with explicit reactor and admission-control bounds.
pub fn serve_with_config(
    registry: Arc<GraphRegistry>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    serve_inner(registry, addr, None, config)
}

/// [`serve`] backed by a durable [`IndexStore`]: enables the `SAVE`
/// protocol verb, audits every LOAD/SAVE/UNLOAD/EVICT, and surfaces the
/// persisted working set through `LIST`/`STATS`. Callers typically run
/// [`warm_boot`](crate::boot::warm_boot) on the registry first.
pub fn serve_with_store(
    registry: Arc<GraphRegistry>,
    store: Arc<IndexStore>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    serve_with_store_and_config(registry, store, addr, ServeConfig::default())
}

/// [`serve_with_store`] with explicit reactor bounds.
pub fn serve_with_store_and_config(
    registry: Arc<GraphRegistry>,
    store: Arc<IndexStore>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    // Evictions happen inside registry admission, far from any protocol
    // handler — the hook routes them into the audit log.
    let audit_store = Arc::clone(&store);
    registry.set_evict_hook(Box::new(move |name| {
        let _ = audit_store.record(AuditKind::Evict, Some(name), "reason=budget");
    }));
    serve_inner(registry, addr, Some(store), config)
}

fn serve_inner(
    registry: Arc<GraphRegistry>,
    addr: impl ToSocketAddrs,
    store: Option<Arc<IndexStore>>,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let workers = config.effective_workers();
    let shared = Arc::new(ServerShared {
        registry,
        store,
        shutdown: AtomicBool::new(false),
        jobs: Arc::new(JobQueue::new(config.queue_limit)),
        metrics: ReactorMetrics::new(config.queue_limit, workers),
    });

    let reactor = Reactor::new(listener, Arc::clone(&shared), config)?;
    let completions = reactor.completions();
    let reactor_thread = std::thread::Builder::new()
        .name("parscan-serve-reactor".into())
        .spawn(move || reactor.run())?;

    Ok(ServerHandle {
        addr,
        shared,
        completions,
        reactor_thread: Some(reactor_thread),
    })
}

/// Convenience: serve a single engine as the default graph `"default"`
/// with no byte budget — the single-graph shape of PR 1. Clients may
/// still `LOAD` more graphs at runtime.
pub fn serve_engine(
    engine: Arc<QueryEngine>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    serve(GraphRegistry::single(engine), addr)
}

/// What the connection should do after its response is written.
pub(crate) enum Control {
    Continue,
    Close,
    ShutdownServer,
}

/// Build the `LOAD` acknowledgement (and audit record) from a load's
/// result — shared by the synchronous path in [`handle_request`] and
/// the deferred-follower callback in the reactor's worker pool.
pub(crate) fn load_response(
    shared: &ServerShared,
    name: String,
    path: &str,
    start: Instant,
    result: Result<(Arc<QueryEngine>, LoadOutcome), RegistryError>,
) -> Response {
    match result {
        Ok((engine, outcome)) => {
            let index = engine.index();
            let g = index.graph();
            let millis = start.elapsed().as_millis() as u64;
            if outcome == LoadOutcome::Loaded {
                if let Some(store) = &shared.store {
                    let kind = if path.ends_with(".pscidx") {
                        AuditKind::Load
                    } else {
                        AuditKind::Build
                    };
                    let _ = store.record(
                        kind,
                        Some(&name),
                        &format!("n={} m={} millis={millis}", g.num_vertices(), g.num_edges()),
                    );
                }
            }
            Response::Loaded {
                name,
                outcome,
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                bytes: engine.index().memory_bytes(),
                millis,
            }
        }
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

/// Dispatch one parsed request. `CLUSTER` and `LOAD` take this
/// synchronous path only as a fallback — the worker pool routes them
/// through the deferred engine/registry entry points so coalesced
/// followers don't hold a worker thread.
pub(crate) fn handle_request(
    request: Request,
    shared: &Arc<ServerShared>,
    session_requests: u64,
) -> (Response, Control) {
    let registry = &shared.registry;
    // Resolve a query's graph address to its engine, turning registry
    // errors (unknown name, still loading) into protocol error messages.
    let resolve = |graph: Option<&str>| registry.get(graph).map_err(|e| e.to_string());
    match request {
        Request::Ping => (Response::Pong, Control::Continue),
        Request::Stats { graph } => (
            shared.stats_response(graph.as_deref(), session_requests),
            Control::Continue,
        ),
        Request::List => (
            Response::List {
                default: registry.default_name().to_string(),
                graphs: registry.list(),
                persisted: shared.persisted_names(),
            },
            Control::Continue,
        ),
        Request::Load { name, path, cache } => {
            let start = Instant::now();
            let config = crate::engine::EngineConfig {
                cache_capacity: cache.unwrap_or(registry.engine_config().cache_capacity),
                ..registry.engine_config()
            };
            let result = registry.load_path_with_config(&name, &path, config);
            (
                load_response(shared, name, &path, start, result),
                Control::Continue,
            )
        }
        Request::Unload { name } => (
            match registry.unload(&name) {
                Ok(bytes_freed) => {
                    // An explicit UNLOAD also removes the graph from the
                    // persisted working set — the operator said "forget
                    // this graph", and a later warm boot must respect
                    // that. (Evictions, by contrast, leave the manifest
                    // alone: boot re-admits whatever fits the budget.)
                    if let Some(store) = &shared.store {
                        let _ = store.forget(&name);
                    }
                    Response::Unloaded { name, bytes_freed }
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Control::Continue,
        ),
        Request::Save { graph } => {
            let start = Instant::now();
            let response = match &shared.store {
                None => Response::Error {
                    message: "this server has no durable store (start it with --store-dir)".into(),
                },
                Some(store) => match registry.get(graph.as_deref()) {
                    Ok((canonical, engine)) => {
                        let pinned = canonical == registry.default_name();
                        let cache_capacity = engine.stats().cache_capacity;
                        match store.save(&canonical, &engine.index(), pinned, cache_capacity) {
                            Ok(entry) => Response::Saved {
                                name: canonical,
                                snapshot: entry.snapshot,
                                bytes: entry.bytes,
                                millis: start.elapsed().as_millis() as u64,
                            },
                            // A failed save leaves the previous
                            // manifest+snapshot generation fully intact
                            // (see `IndexStore::save`), so the client
                            // can simply try again.
                            Err(e) => Response::Retryable {
                                message: format!("saving {canonical:?} failed: {e}"),
                                reason: "io",
                            },
                        }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
            };
            (response, Control::Continue)
        }
        Request::Cluster {
            graph,
            params,
            full,
        } => (
            match resolve(graph.as_deref()) {
                Ok((canonical, engine)) => match engine.try_cluster(params) {
                    Ok(outcome) => Response::Cluster {
                        graph: canonical,
                        params,
                        outcome,
                        full,
                    },
                    Err(abandoned) => Response::Retryable {
                        message: abandoned.to_string(),
                        reason: "coalesce",
                    },
                },
                Err(message) => Response::Error { message },
            },
            Control::Continue,
        ),
        Request::Probe {
            graph,
            vertex,
            params,
        } => (
            match resolve(graph.as_deref()) {
                Ok((canonical, engine)) => match engine.probe(vertex, params) {
                    Ok(probe) => Response::Probe {
                        graph: canonical,
                        vertex,
                        params,
                        probe,
                    },
                    Err(message) => Response::Error { message },
                },
                Err(message) => Response::Error { message },
            },
            Control::Continue,
        ),
        Request::Sweep { graph, eps_step } => (
            match resolve(graph.as_deref()) {
                Ok((canonical, engine)) => match engine.sweep_best(eps_step) {
                    Ok(best) => Response::Sweep {
                        graph: canonical,
                        best,
                    },
                    Err(message) => Response::Error { message },
                },
                Err(message) => Response::Error { message },
            },
            Control::Continue,
        ),
        Request::Apply { graph, batch } => (
            match resolve(graph.as_deref()) {
                Ok((canonical, engine)) => match engine.apply_update(&batch) {
                    Ok(outcome) => {
                        // A mutation makes the resident index newer than
                        // any snapshot: mark the graph dirty so SAVE (or
                        // the shutdown sweep) persists it, and audit the
                        // mutation like loads/saves.
                        if outcome.changed {
                            if let Some(store) = &shared.store {
                                store.mark_dirty(&canonical);
                                let _ = store.record(
                                    AuditKind::Mutate,
                                    Some(&canonical),
                                    &format!(
                                        "epoch={} ins={} del={} rew={} changed={} n={} m={}",
                                        outcome.epoch,
                                        outcome.inserted,
                                        outcome.deleted,
                                        outcome.reweighted,
                                        outcome.changed_edges,
                                        outcome.n,
                                        outcome.m
                                    ),
                                );
                            }
                        }
                        Response::Applied {
                            graph: canonical,
                            outcome,
                        }
                    }
                    Err(message) => Response::Error { message },
                },
                Err(message) => Response::Error { message },
            },
            Control::Continue,
        ),
        Request::Batch(inner) => {
            let responses = BatchExecutor::new(registry)
                .execute(&inner, |g| shared.stats_response(g, session_requests));
            (Response::Batch(responses), Control::Continue)
        }
        Request::Quit => (Response::Bye { shutdown: false }, Control::Close),
        Request::Shutdown => (Response::Bye { shutdown: true }, Control::ShutdownServer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use parscan_core::{IndexConfig, ScanIndex};
    use parscan_graph::generators;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn spawn_server() -> ServerHandle {
        let (g, _) = generators::planted_partition(200, 4, 9.0, 1.0, 5);
        let engine = Arc::new(QueryEngine::new(
            Arc::new(ScanIndex::build(g, IndexConfig::default())),
            EngineConfig::default(),
        ));
        serve_engine(engine, "127.0.0.1:0").expect("bind")
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for l in lines {
            stream.write_all(l.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        reader
            .lines()
            .take(lines.len())
            .map(|l| l.expect("response line"))
            .collect()
    }

    #[test]
    fn ping_stats_and_errors() {
        let server = spawn_server();
        let out = roundtrip(server.addr(), &["PING", "NONSENSE", "STATS", "QUIT"]);
        assert_eq!(out[0], r#"{"ok":true,"op":"pong"}"#);
        assert!(out[1].starts_with(r#"{"ok":false,"op":"error""#));
        assert!(out[2].contains(r#""op":"stats""#));
        assert!(out[2].contains(r#""n":200"#));
        assert!(out[3].contains(r#""op":"bye""#));
        server.shutdown();
    }

    #[test]
    fn stats_surface_reactor_counters() {
        let server = spawn_server();
        let out = roundtrip(server.addr(), &["STATS", "QUIT"]);
        // This session is registered and counted while its STATS runs.
        assert!(
            out[0].contains(r#""reactor":{"connections":1,"accepted":1"#),
            "{}",
            out[0]
        );
        assert!(out[0].contains(r#""queue_limit":1024"#), "{}", out[0]);
        assert!(
            out[0].contains(r#""shed_requests":0,"shed_connections":0"#),
            "{}",
            out[0]
        );
        assert!(out[0].contains(r#""session_requests":1"#), "{}", out[0]);
        assert!(
            !out[0].contains(r#""sessions":"#),
            "replaced field: {}",
            out[0]
        );
        server.shutdown();
    }

    #[test]
    fn cluster_roundtrip_and_cache_flag() {
        let server = spawn_server();
        let out = roundtrip(server.addr(), &["CLUSTER 3 0.4", "CLUSTER 3 0.4", "QUIT"]);
        assert!(out[0].contains(r#""cached":false"#), "{}", out[0]);
        assert!(out[1].contains(r#""cached":true"#), "{}", out[1]);
        server.shutdown();
    }

    #[test]
    fn mutation_roundtrip_over_tcp() {
        // A fixed tiny graph so every mutation's effect is deterministic:
        // triangle {0,1,2}, edge (3,4), isolated vertex 5.
        let g = parscan_graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let engine = Arc::new(QueryEngine::new(
            Arc::new(ScanIndex::build(g, IndexConfig::default())),
            EngineConfig::default(),
        ));
        let server = serve_engine(engine, "127.0.0.1:0").expect("bind");
        let out = roundtrip(
            server.addr(),
            &[
                "INSERT 4,5",
                "DELETE 0,1",
                "APPLY +0,1 -3,4",
                "INSERT 0,0",
                "INSERT 0,99",
                "BATCH INSERT 1,2 ; PING",
                "STATS",
                "QUIT",
            ],
        );
        assert!(
            out[0].contains(r#""op":"apply""#)
                && out[0].contains(r#""epoch":1"#)
                && out[0].contains(r#""inserted":1"#),
            "{}",
            out[0]
        );
        assert!(
            out[1].contains(r#""epoch":2"#) && out[1].contains(r#""deleted":1"#),
            "{}",
            out[1]
        );
        assert!(
            out[2].contains(r#""epoch":3"#)
                && out[2].contains(r#""inserted":1"#)
                && out[2].contains(r#""deleted":1"#),
            "{}",
            out[2]
        );
        assert!(out[3].contains(r#""ok":false"#), "self-loop: {}", out[3]);
        assert!(out[4].contains("out of range"), "{}", out[4]);
        assert!(out[5].contains(r#""ok":false"#), "batch: {}", out[5]);
        assert!(
            out[6].contains(r#""epoch":3"#) && out[6].contains(r#""updates_applied":3"#),
            "{}",
            out[6]
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = spawn_server();
        let addr = server.addr();
        let out = roundtrip(addr, &["SHUTDOWN"]);
        assert!(out[0].contains(r#""shutdown":true"#));
        server.wait();
        // The listener is gone: new connections are refused (or reset).
        std::thread::sleep(Duration::from_millis(50));
        let refused = TcpStream::connect(addr).is_err();
        assert!(refused, "listener should be closed after SHUTDOWN");
    }

    #[test]
    fn slow_client_split_across_read_timeouts_is_not_mangled() {
        // Regression: a request arriving in pieces slower than the 100ms
        // poll timeout used to lose its first fragment (the loop cleared
        // the buffer after a WouldBlock), mis-framing the stream.
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"CLUSTER 3").unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(250));
        stream.write_all(b" 0.4\nQUIT\n").unwrap();
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        let lines: Vec<String> = reader.lines().take(2).map(|l| l.unwrap()).collect();
        assert!(
            lines[0].contains(r#""op":"cluster""#) && lines[0].contains(r#""mu":3"#),
            "split request mangled: {}",
            lines[0]
        );
        assert!(lines[1].contains(r#""op":"bye""#));
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected_and_closed() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Stream well past the cap without ever sending a newline. The
        // server may reject and close mid-stream (that's the point), so
        // later writes are allowed to fail with EPIPE/ECONNRESET.
        let chunk = vec![b'A'; 32 * 1024];
        for _ in 0..3 {
            if stream.write_all(&chunk).is_err() {
                break;
            }
        }
        let _ = stream.flush();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds"), "{line}");
        // The session closed: the next read hits EOF.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn save_persists_and_unload_forgets_via_protocol() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("parscan_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(IndexStore::open(&dir).expect("open store"));

        let registry = {
            let (g, _) = generators::planted_partition(200, 4, 9.0, 1.0, 5);
            let r = crate::registry::GraphRegistry::new("default", Default::default());
            r.install("default", ScanIndex::build(g, IndexConfig::default()))
                .unwrap();
            Arc::new(r)
        };
        let server =
            serve_with_store(Arc::clone(&registry), Arc::clone(&store), "127.0.0.1:0").unwrap();
        let out = roundtrip(server.addr(), &["SAVE", "LIST", "STATS", "QUIT"]);
        assert!(
            out[0].contains(r#""op":"save""#) && out[0].contains(r#""graph":"default""#),
            "{}",
            out[0]
        );
        assert!(
            out[1].contains(r#""persisted":["default"]"#) && out[1].contains(r#""persisted":true"#),
            "{}",
            out[1]
        );
        assert!(out[2].contains(r#""store":{"persisted":1"#), "{}", out[2]);
        assert_eq!(store.entries().len(), 1);

        // UNLOAD removes the graph from the persisted working set too.
        let out = roundtrip(server.addr(), &["UNLOAD default", "LIST", "QUIT"]);
        assert!(out[0].contains(r#""op":"unload""#), "{}", out[0]);
        assert!(out[1].contains(r#""persisted":[]"#), "{}", out[1]);
        assert!(store.entries().is_empty());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_without_store_is_a_protocol_error() {
        let server = spawn_server();
        let out = roundtrip(server.addr(), &["SAVE", "QUIT"]);
        assert!(
            out[0].contains(r#""ok":false"#) && out[0].contains("--store-dir"),
            "{}",
            out[0]
        );
        server.shutdown();
    }

    #[test]
    fn handle_shutdown_joins_sessions() {
        let server = spawn_server();
        let addr = server.addr();
        // An idle open connection must not block shutdown.
        let _idle = TcpStream::connect(addr).unwrap();
        server.shutdown();
    }
}
