//! The append-only audit log: every state-changing store/registry event,
//! durably, in order.
//!
//! Debugging a production server after the fact needs a ground-truth
//! event history — *when* was this graph loaded, *what* evicted it, did
//! the operator really `SAVE` before the restart? The audit log records
//! exactly that, in the agent-datakit style: a single append-only file
//! of one-line events with **monotonic sequence numbers**, replayable
//! with [`replay`] (or `grep`, since the format is text):
//!
//! ```text
//! 17 1754650000123 LOAD web n=100000 m=1583412 millis=412
//! 18 1754650002456 SAVE web bytes=33554432
//! 19 1754650009000 EVICT old-web reason=byte-budget
//! ```
//!
//! Properties:
//!
//! - **Monotonic seq.** Assigned under the writer lock and recovered on
//!   open by scanning the existing tail, so sequence numbers keep
//!   increasing across restarts — a replay can interleave logs from
//!   several runs and still order them.
//! - **Crash-tolerant.** Appends are flushed per event. A crash can tear
//!   at most the final line; [`replay`] skips unparseable lines instead
//!   of failing, so one torn tail never poisons the history.
//! - **Size-rotated.** When the live file exceeds the configured cap it
//!   is renamed to `<name>.1` (replacing the previous rotation) and a
//!   fresh file continues the sequence — the log is bounded at ~2× the
//!   cap, and the most recent events are always on disk.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event kinds recorded by the store and server. Kept as an enum (not
/// free-form strings) so replay-driven tooling can match exhaustively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKind {
    /// Server started and warm-booted from the manifest.
    Boot,
    /// A graph was admitted into the registry (protocol `LOAD` or boot
    /// preload).
    Load,
    /// An index was built from a raw graph (as opposed to read from a
    /// snapshot).
    Build,
    /// A snapshot was written (protocol `SAVE`).
    Save,
    /// A graph was explicitly removed (protocol `UNLOAD`).
    Unload,
    /// The registry evicted a graph to make room under its budget.
    Evict,
    /// A resident index was mutated in place (protocol
    /// `INSERT`/`DELETE`/`APPLY`) — any existing snapshot is stale until
    /// the next `SAVE`.
    Mutate,
}

impl AuditKind {
    pub fn as_str(self) -> &'static str {
        match self {
            AuditKind::Boot => "BOOT",
            AuditKind::Load => "LOAD",
            AuditKind::Build => "BUILD",
            AuditKind::Save => "SAVE",
            AuditKind::Unload => "UNLOAD",
            AuditKind::Evict => "EVICT",
            AuditKind::Mutate => "MUTATE",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "BOOT" => AuditKind::Boot,
            "LOAD" => AuditKind::Load,
            "BUILD" => AuditKind::Build,
            "SAVE" => AuditKind::Save,
            "UNLOAD" => AuditKind::Unload,
            "EVICT" => AuditKind::Evict,
            "MUTATE" => AuditKind::Mutate,
            _ => return None,
        })
    }
}

/// One replayed audit event.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditEvent {
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at append time.
    pub unix_millis: u64,
    pub kind: AuditKind,
    /// The graph the event concerns (`None` for server-level events like
    /// `BOOT`, written as `-` on the wire).
    pub graph: Option<String>,
    /// Free-form `key=value` detail tail (may be empty).
    pub detail: String,
}

/// The live, size-rotated append handle. One per store; callers
/// serialize access (the store wraps it in a `Mutex`).
#[derive(Debug)]
pub struct AuditLog {
    path: PathBuf,
    file: File,
    bytes: u64,
    next_seq: u64,
    max_bytes: u64,
}

/// The rotated sibling of an audit-log path (`audit.log` →
/// `audit.log.1`).
fn rotated_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".1");
    PathBuf::from(name)
}

/// Best-effort parse of one log line; `None` for torn/foreign lines.
fn parse_line(line: &str) -> Option<AuditEvent> {
    let mut parts = line.splitn(5, ' ');
    let seq = parts.next()?.parse().ok()?;
    let unix_millis = parts.next()?.parse().ok()?;
    let kind = AuditKind::parse(parts.next()?)?;
    let graph = match parts.next()? {
        "-" => None,
        g => Some(g.to_string()),
    };
    let detail = parts.next().unwrap_or("").to_string();
    Some(AuditEvent {
        seq,
        unix_millis,
        kind,
        graph,
        detail,
    })
}

/// Last sequence number recorded in `path` (0 when absent/empty). Torn
/// tail lines are skipped, like everywhere else.
fn last_seq_in(path: &Path) -> u64 {
    let Ok(f) = File::open(path) else { return 0 };
    BufReader::new(f)
        .lines()
        .map_while(Result::ok)
        .filter_map(|l| parse_line(&l))
        .map(|e| e.seq)
        .last()
        .unwrap_or(0)
}

impl AuditLog {
    /// Open (or create) the log at `path`, recovering the next sequence
    /// number from the existing tail — including the rotated file, so a
    /// rotation immediately before a restart cannot reset the sequence.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<AuditLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        let last = last_seq_in(&path).max(last_seq_in(&rotated_path(&path)));
        Ok(AuditLog {
            path,
            file,
            bytes,
            next_seq: last + 1,
            max_bytes,
        })
    }

    /// Append one event, returning its sequence number. The write is
    /// flushed so an immediately following crash loses at most the line
    /// being written (the OS page cache holds it; full fsync per event
    /// would serialize every protocol command on disk latency — the
    /// audit log trades that durability notch for throughput, unlike
    /// snapshots and the manifest which fsync always).
    pub fn append(
        &mut self,
        kind: AuditKind,
        graph: Option<&str>,
        detail: &str,
    ) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let unix_millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        debug_assert!(!detail.contains('\n'), "audit detail must be single-line");
        let line = format!(
            "{seq} {unix_millis} {} {} {detail}\n",
            kind.as_str(),
            graph.unwrap_or("-"),
        );
        failpoint::check("audit.append")?;
        // A `short(K)` policy tears the line mid-write — the torn tail a
        // crash between `write_all` and `flush` leaves behind. `replay`
        // must skip it and seq recovery must survive it.
        if let Some(accept) = failpoint::short_write("audit.append", line.len()) {
            self.file.write_all(&line.as_bytes()[..accept])?;
            let _ = self.file.flush();
            self.bytes += accept as u64;
            return Err(io::Error::other(format!(
                "injected short audit write: {accept} of {} bytes",
                line.len()
            )));
        }
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.bytes += line.len() as u64;
        if self.bytes > self.max_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Replace any previous rotation; the sequence keeps counting.
        std::fs::rename(&self.path, rotated_path(&self.path))?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.bytes = 0;
        Ok(())
    }
}

/// Replay the audit history at `path` (rotated file first, then the live
/// file), in sequence order. Unparseable lines — a torn tail after a
/// crash, say — are skipped, not errors.
pub fn replay(path: &Path) -> io::Result<Vec<AuditEvent>> {
    let mut events = Vec::new();
    for p in [rotated_path(path), path.to_path_buf()] {
        let f = match File::open(&p) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        events.extend(
            BufReader::new(f)
                .lines()
                .map_while(Result::ok)
                .filter_map(|l| parse_line(&l)),
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_audit_{name}_{}", std::process::id()));
        p
    }

    fn clean(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(rotated_path(p));
    }

    #[test]
    fn append_and_replay() {
        let p = tmp("basic");
        clean(&p);
        let mut log = AuditLog::open(&p, 1 << 20).unwrap();
        assert_eq!(log.append(AuditKind::Boot, None, "graphs=0").unwrap(), 1);
        assert_eq!(
            log.append(AuditKind::Load, Some("web"), "n=10 m=20")
                .unwrap(),
            2
        );
        assert_eq!(log.append(AuditKind::Save, Some("web"), "").unwrap(), 3);
        let events = replay(&p).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, AuditKind::Boot);
        assert_eq!(events[0].graph, None);
        assert_eq!(events[1].graph.as_deref(), Some("web"));
        assert_eq!(events[1].detail, "n=10 m=20");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        clean(&p);
    }

    #[test]
    fn sequence_survives_reopen() {
        let p = tmp("reopen");
        clean(&p);
        {
            let mut log = AuditLog::open(&p, 1 << 20).unwrap();
            log.append(AuditKind::Load, Some("a"), "").unwrap();
            log.append(AuditKind::Load, Some("b"), "").unwrap();
        }
        let mut log = AuditLog::open(&p, 1 << 20).unwrap();
        assert_eq!(log.next_seq(), 3, "sequence continues across restarts");
        assert_eq!(log.append(AuditKind::Unload, Some("a"), "").unwrap(), 3);
        clean(&p);
    }

    #[test]
    fn torn_tail_is_skipped() {
        let p = tmp("torn");
        clean(&p);
        {
            let mut log = AuditLog::open(&p, 1 << 20).unwrap();
            log.append(AuditKind::Load, Some("a"), "ok=1").unwrap();
        }
        // Simulate a crash mid-append: a truncated line at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(b"2 17546").unwrap();
        }
        let events = replay(&p).unwrap();
        assert_eq!(events.len(), 1, "torn line skipped, good line kept");
        // And the next writer continues past the good sequence.
        let log = AuditLog::open(&p, 1 << 20).unwrap();
        assert_eq!(log.next_seq(), 2);
        clean(&p);
    }

    #[test]
    fn rotation_bounds_size_and_keeps_sequence() {
        let p = tmp("rotate");
        clean(&p);
        let mut log = AuditLog::open(&p, 256).unwrap();
        for i in 0..64 {
            log.append(AuditKind::Load, Some("g"), &format!("i={i}"))
                .unwrap();
        }
        let live = std::fs::metadata(&p).unwrap().len();
        assert!(live <= 512, "live file stays near the cap, got {live}");
        assert!(rotated_path(&p).exists(), "rotation happened");
        let events = replay(&p).unwrap();
        // Replay covers rotated + live; the newest events are intact and
        // the sequence is strictly increasing across the rotation seam.
        assert!(events.len() >= 2);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.last().unwrap().detail, "i=63");
        // A reopen after rotation still continues the global sequence.
        drop(log);
        let log = AuditLog::open(&p, 256).unwrap();
        assert_eq!(log.next_seq(), 65);
        clean(&p);
    }
}
