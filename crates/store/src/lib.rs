//! # parscan-store — the durable index store
//!
//! Construction of a GS*-Index costs `O((α + log n) m)` work; this crate
//! makes that investment survive process restarts. A store is one
//! directory holding three durable artifacts that together let a server
//! come back from a cold start *without rebuilding anything*:
//!
//! 1. **Snapshots** — one v2 index snapshot per graph (section-tabled,
//!    checksummed, loaded with a single sequential read; the format
//!    lives in `parscan_core::persist`).
//! 2. **Manifest** ([`manifest`]) — the checksummed, atomically
//!    rewritten "root pointer" naming every persisted graph with its
//!    measure, pin status, and per-graph engine config.
//! 3. **Audit log** ([`audit`]) — an append-only, size-rotated history
//!    of every LOAD/BUILD/SAVE/UNLOAD/EVICT with monotonic sequence
//!    numbers that survive restarts.
//!
//! [`IndexStore`] ties the three together with crash-safe write
//! ordering; the server crate layers warm boot and the `SAVE` protocol
//! verb on top.

pub mod audit;
pub mod manifest;
mod store;

pub use audit::{AuditEvent, AuditKind, AuditLog};
pub use manifest::ManifestEntry;
pub use store::{IndexStore, StoreConfig};
