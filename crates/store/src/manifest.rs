//! The registry manifest: which graphs a store holds, durably.
//!
//! The manifest is the store's *root pointer*: a restarted server reads
//! it to learn its previous working set — each graph's name, snapshot
//! file, similarity measure, pin status, and per-graph engine
//! configuration — and re-admits everything unattended (warm boot). It
//! is deliberately a **text** format: one graph per line, inspectable
//! with `cat`, diffable, greppable in an incident.
//!
//! ```text
//! parscan-manifest v1
//! # optional comments
//! graph name=web snapshot=web.pscidx measure=cosine pinned=1 cache=256 bytes=33554432 n=100000 m=1583412
//! checksum 1f2e3d4c5b6a7988
//! ```
//!
//! Integrity and evolution:
//!
//! - The final `checksum` line carries [`checksum64`] over every byte
//!   before it; a torn or hand-mangled manifest is rejected as a typed
//!   error, never half-applied.
//! - Rewrites are atomic ([`atomic_write`]): the manifest on disk is
//!   always a complete, checksummed generation — the same temp + fsync +
//!   rename discipline as index snapshots.
//! - Per-entry fields are `key=value` pairs; readers ignore unknown keys
//!   and versioned parsing gates the header, so future fields (tiering
//!   policy, TTLs) can be added without breaking old readers.

use parscan_core::persist::{atomic_write, checksum64};
use parscan_core::SimilarityMeasure;
use std::io::{self, ErrorKind};
use std::path::Path;

/// Manifest format identifier (first line).
const HEADER: &str = "parscan-manifest v1";

/// One persisted graph: everything a warm boot needs to re-admit it.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestEntry {
    /// Registry name (validated to `[A-Za-z0-9_.-]{1,64}` upstream, so
    /// it never needs quoting in the line format).
    pub name: String,
    /// Snapshot file name, relative to the store's snapshot directory.
    pub snapshot: String,
    /// Similarity measure the snapshot was built with.
    pub measure: SimilarityMeasure,
    /// Whether this graph is the server's pinned default.
    pub pinned: bool,
    /// The engine's result-cache capacity for this graph.
    pub cache_capacity: usize,
    /// Snapshot file size in bytes — the load-cost estimate used to
    /// work-balance parallel warm boots.
    pub bytes: u64,
    /// Vertex count (display/diagnostics; the snapshot is authoritative).
    pub vertices: u64,
    /// Edge count (display/diagnostics).
    pub edges: u64,
}

fn measure_name(m: SimilarityMeasure) -> &'static str {
    match m {
        SimilarityMeasure::Cosine => "cosine",
        SimilarityMeasure::Jaccard => "jaccard",
        SimilarityMeasure::Dice => "dice",
    }
}

fn measure_from_name(s: &str) -> Option<SimilarityMeasure> {
    match s {
        "cosine" => Some(SimilarityMeasure::Cosine),
        "jaccard" => Some(SimilarityMeasure::Jaccard),
        "dice" => Some(SimilarityMeasure::Dice),
        _ => None,
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// Serialize `entries` into manifest bytes (header, one `graph` line per
/// entry in the given order, checksum trailer).
pub fn render(entries: &[ManifestEntry]) -> Vec<u8> {
    let mut body = String::with_capacity(64 + entries.len() * 96);
    body.push_str(HEADER);
    body.push('\n');
    for e in entries {
        body.push_str(&format!(
            "graph name={} snapshot={} measure={} pinned={} cache={} bytes={} n={} m={}\n",
            e.name,
            e.snapshot,
            measure_name(e.measure),
            u8::from(e.pinned),
            e.cache_capacity,
            e.bytes,
            e.vertices,
            e.edges,
        ));
    }
    let sum = checksum64(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    body.into_bytes()
}

/// Parse manifest bytes, verifying the checksum trailer and the header.
pub fn parse(bytes: &[u8]) -> io::Result<Vec<ManifestEntry>> {
    let text = std::str::from_utf8(bytes).map_err(|_| bad("manifest is not UTF-8".into()))?;
    // Split off the checksum trailer: the last non-empty line.
    let trimmed = text.trim_end_matches('\n');
    let (body_end, trailer) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => (0, trimmed),
    };
    let stored = trailer
        .strip_prefix("checksum ")
        .ok_or_else(|| bad("manifest missing checksum trailer".into()))?;
    let stored = u64::from_str_radix(stored.trim(), 16)
        .map_err(|_| bad(format!("bad manifest checksum literal {stored:?}")))?;
    let body = &text[..body_end];
    if checksum64(body.as_bytes()) != stored {
        return Err(bad("manifest checksum mismatch: file is corrupted".into()));
    }

    let mut lines = body.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        Some(h) if h.starts_with("parscan-manifest") => {
            return Err(bad(format!("unsupported manifest version: {h:?}")));
        }
        other => {
            return Err(bad(format!(
                "not a parscan manifest (first line {other:?})"
            )))
        }
    }
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(fields) = line.strip_prefix("graph ") else {
            return Err(bad(format!("unrecognized manifest line {line:?}")));
        };
        entries.push(parse_entry(fields)?);
    }
    Ok(entries)
}

fn parse_entry(fields: &str) -> io::Result<ManifestEntry> {
    let mut name = None;
    let mut snapshot = None;
    let mut measure = None;
    let mut pinned = false;
    let mut cache_capacity: usize = 128;
    let mut bytes: u64 = 0;
    let mut vertices: u64 = 0;
    let mut edges: u64 = 0;
    for pair in fields.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(bad(format!("bad manifest field {pair:?} (want key=value)")));
        };
        match key {
            "name" => name = Some(value.to_string()),
            "snapshot" => snapshot = Some(value.to_string()),
            "measure" => {
                measure = Some(
                    measure_from_name(value)
                        .ok_or_else(|| bad(format!("unknown measure {value:?}")))?,
                )
            }
            "pinned" => pinned = value == "1",
            "cache" => {
                cache_capacity = value
                    .parse()
                    .map_err(|_| bad(format!("bad cache capacity {value:?}")))?
            }
            "bytes" => {
                bytes = value
                    .parse()
                    .map_err(|_| bad(format!("bad bytes field {value:?}")))?
            }
            "n" => {
                vertices = value
                    .parse()
                    .map_err(|_| bad(format!("bad n field {value:?}")))?
            }
            "m" => {
                edges = value
                    .parse()
                    .map_err(|_| bad(format!("bad m field {value:?}")))?
            }
            // Unknown keys are future fields; skip them.
            _ => {}
        }
    }
    Ok(ManifestEntry {
        name: name.ok_or_else(|| bad("manifest entry missing name=".into()))?,
        snapshot: snapshot.ok_or_else(|| bad("manifest entry missing snapshot=".into()))?,
        measure: measure.ok_or_else(|| bad("manifest entry missing measure=".into()))?,
        pinned,
        cache_capacity,
        bytes,
        vertices,
        edges,
    })
}

/// Atomically replace the manifest at `path` with `entries`.
pub fn write(path: &Path, entries: &[ManifestEntry]) -> io::Result<()> {
    failpoint::check("manifest.write")?;
    atomic_write(path, &render(entries))
}

/// Read and parse the manifest at `path`. A missing file is an empty
/// working set, not an error (first boot of a fresh store).
pub fn read(path: &Path) -> io::Result<Vec<ManifestEntry>> {
    match std::fs::read(path) {
        Ok(bytes) => parse(&bytes),
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ManifestEntry> {
        vec![
            ManifestEntry {
                name: "boot".into(),
                snapshot: "boot.pscidx".into(),
                measure: SimilarityMeasure::Cosine,
                pinned: true,
                cache_capacity: 128,
                bytes: 4096,
                vertices: 300,
                edges: 1500,
            },
            ManifestEntry {
                name: "web-2024.v1".into(),
                snapshot: "web-2024.v1.pscidx".into(),
                measure: SimilarityMeasure::Jaccard,
                pinned: false,
                cache_capacity: 512,
                bytes: 1 << 20,
                vertices: 100_000,
                edges: 1_583_412,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let entries = sample();
        let bytes = render(&entries);
        assert_eq!(parse(&bytes).unwrap(), entries);
    }

    #[test]
    fn empty_round_trip() {
        let bytes = render(&[]);
        assert_eq!(parse(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = render(&sample());
        // Flip a byte inside an entry line.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let err = parse(&bytes).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        // Truncations anywhere are rejected too (checksum or structure).
        let bytes = render(&sample());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 2] {
            assert!(parse(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn unknown_keys_are_ignored_future_versions_rejected() {
        let entries = sample();
        let text = String::from_utf8(render(&entries)).unwrap();
        // Inject an unknown key into the first graph line and reseal.
        let patched = text.replace("pinned=1", "pinned=1 ttl_secs=60");
        let body_end = patched.rfind("checksum ").unwrap();
        let body = &patched[..body_end];
        let resealed = format!("{body}checksum {:016x}\n", checksum64(body.as_bytes()));
        assert_eq!(parse(resealed.as_bytes()).unwrap(), entries);

        // A future header version is a typed error.
        let future = "parscan-manifest v9\n";
        let sealed = format!("{future}checksum {:016x}\n", checksum64(future.as_bytes()));
        let err = parse(sealed.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn file_round_trip_and_missing_is_empty() {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_manifest_test_{}", std::process::id()));
        let entries = sample();
        write(&p, &entries).unwrap();
        assert_eq!(read(&p).unwrap(), entries);
        std::fs::remove_file(&p).unwrap();
        assert_eq!(read(&p).unwrap(), Vec::new());
    }
}
