//! [`IndexStore`]: one directory owning snapshots, manifest, and audit
//! log.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/
//!   manifest.psm          the working set (see `manifest`)
//!   audit.log             append-only event history (see `audit`)
//!   audit.log.1           previous rotation, if any
//!   snapshots/
//!     <name>.pscidx       one v2 index snapshot per persisted graph
//! ```
//!
//! Write ordering makes every crash window safe: a snapshot is written
//! (atomically) *before* the manifest names it, so the manifest never
//! points at a missing or partial snapshot; removing a graph rewrites
//! the manifest *before* deleting the snapshot, so the worst crash
//! outcome is an orphaned snapshot file, never a dangling manifest
//! entry. Both files are replaced via temp + fsync + rename.

use crate::audit::{self, AuditEvent, AuditKind, AuditLog};
use crate::manifest::{self, ManifestEntry};
use parscan_core::ScanIndex;
use std::collections::BTreeSet;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Audit-log size cap before rotation.
    pub audit_max_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            // Generous for a text log of one line per state change; a
            // rotation pair bounds disk use at ~8 MiB per store.
            audit_max_bytes: 4 << 20,
        }
    }
}

/// A durable index store rooted at one directory. Cheap to share behind
/// an `Arc`; interior mutability makes every method `&self`.
#[derive(Debug)]
pub struct IndexStore {
    dir: PathBuf,
    manifest_path: PathBuf,
    audit_path: PathBuf,
    /// In-memory copy of the manifest; every mutation rewrites the file
    /// under this lock, so disk and memory never diverge.
    entries: Mutex<Vec<ManifestEntry>>,
    audit: Mutex<AuditLog>,
    /// Graphs whose resident index has been mutated since their last
    /// snapshot (or that were never snapshotted after a mutation). This
    /// is in-memory state, not persisted: a crash loses the set, but the
    /// audit log's `MUTATE` lines record that the snapshot is stale.
    dirty: Mutex<BTreeSet<String>>,
    /// Snapshot/manifest I/O failures since this store was opened —
    /// surfaced through the server's `STATS` faults block.
    io_errors: AtomicU64,
    /// Audit-log append failures since open. The log is best-effort, so
    /// these never fail a caller, but an operator should see them.
    audit_failures: AtomicU64,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// Store-level name check, independent of the server crate: snapshot
/// file names are derived from graph names, so the charset must stay
/// path-safe even for direct library users.
fn validate_name(name: &str) -> io::Result<()> {
    if name.is_empty() || name.len() > 64 {
        return Err(bad(format!(
            "bad graph name {name:?}: length must be 1..=64"
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')))
    {
        return Err(bad(format!(
            "bad graph name {name:?}: character {c:?} not allowed"
        )));
    }
    Ok(())
}

impl IndexStore {
    /// Open (or initialize) the store at `dir` with default config.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<IndexStore> {
        IndexStore::open_with(dir, StoreConfig::default())
    }

    /// Open (or initialize) the store at `dir`. Creates the directory
    /// tree on first use; reads the manifest (a corrupted manifest is a
    /// typed error — better to refuse to boot than to silently forget
    /// the working set) and recovers the audit sequence.
    pub fn open_with(dir: impl Into<PathBuf>, config: StoreConfig) -> io::Result<IndexStore> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("snapshots"))?;
        let manifest_path = dir.join("manifest.psm");
        let audit_path = dir.join("audit.log");
        let entries = manifest::read(&manifest_path)?;
        let audit = AuditLog::open(&audit_path, config.audit_max_bytes)?;
        Ok(IndexStore {
            dir,
            manifest_path,
            audit_path,
            entries: Mutex::new(entries),
            audit: Mutex::new(audit),
            dirty: Mutex::new(BTreeSet::new()),
            io_errors: AtomicU64::new(0),
            audit_failures: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the manifest (the persisted working set), in manifest
    /// order.
    pub fn entries(&self) -> Vec<ManifestEntry> {
        self.lock_entries().clone()
    }

    /// One manifest entry by graph name.
    pub fn entry(&self, name: &str) -> Option<ManifestEntry> {
        self.lock_entries().iter().find(|e| e.name == name).cloned()
    }

    /// Absolute path of an entry's snapshot file.
    pub fn snapshot_path(&self, entry: &ManifestEntry) -> PathBuf {
        self.dir.join("snapshots").join(&entry.snapshot)
    }

    /// Persist `index` as `name`'s snapshot and upsert its manifest
    /// entry. The snapshot is written crash-safely before the manifest
    /// references it; the audit log records the `SAVE`. Returns the new
    /// entry (its `bytes` is the snapshot file size).
    pub fn save(
        &self,
        name: &str,
        index: &ScanIndex,
        pinned: bool,
        cache_capacity: usize,
    ) -> io::Result<ManifestEntry> {
        validate_name(name)?;
        let result = self.save_inner(name, index, pinned, cache_capacity);
        if result.is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn save_inner(
        &self,
        name: &str,
        index: &ScanIndex,
        pinned: bool,
        cache_capacity: usize,
    ) -> io::Result<ManifestEntry> {
        let snapshot = format!("{name}.pscidx");
        let path = self.dir.join("snapshots").join(&snapshot);
        failpoint::check("store.save.snapshot")?;
        index.save(&path)?;
        let bytes = std::fs::metadata(&path)?.len();
        let g = index.graph();
        let entry = ManifestEntry {
            name: name.to_string(),
            snapshot,
            measure: index.measure(),
            pinned,
            cache_capacity,
            bytes,
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
        };
        {
            // Build the next manifest generation off to the side and
            // commit it to memory only after the write succeeds: if the
            // rewrite fails, memory still matches the generation on disk
            // and a retry (or a restart) serves the previous working set.
            let mut entries = self.lock_entries();
            let mut next = entries.clone();
            match next.iter_mut().find(|e| e.name == name) {
                Some(slot) => *slot = entry.clone(),
                None => next.push(entry.clone()),
            }
            failpoint::check("store.save.manifest")?;
            manifest::write(&self.manifest_path, &next)?;
            *entries = next;
        }
        let _ = self.record(AuditKind::Save, Some(name), &format!("bytes={bytes}"));
        self.lock_dirty().remove(name);
        Ok(entry)
    }

    /// Mark `name` as mutated since its last snapshot. The server calls
    /// this after every effective `INSERT`/`DELETE`/`APPLY`; `save`
    /// clears it. Names need not be in the manifest (a graph can be
    /// mutated before it is ever `SAVE`d).
    pub fn mark_dirty(&self, name: &str) {
        self.lock_dirty().insert(name.to_string());
    }

    /// Names currently marked dirty, sorted. The shutdown path snapshots
    /// these so mutations survive a clean stop without an explicit SAVE.
    pub fn dirty_names(&self) -> Vec<String> {
        self.lock_dirty().iter().cloned().collect()
    }

    /// Whether `name` has unsaved mutations.
    pub fn is_dirty(&self, name: &str) -> bool {
        self.lock_dirty().contains(name)
    }

    /// Load `name`'s snapshot back into a [`ScanIndex`] (one sequential
    /// read; checksum and structural validation inside the v2 reader).
    pub fn load(&self, name: &str) -> io::Result<(ScanIndex, ManifestEntry)> {
        let entry = self
            .entry(name)
            .ok_or_else(|| bad(format!("graph {name:?} is not in the store manifest")))?;
        let index = ScanIndex::load(self.snapshot_path(&entry))?;
        Ok((index, entry))
    }

    /// Remove `name` from the working set: manifest entry first (so a
    /// crash never leaves the manifest pointing at a deleted snapshot),
    /// then the snapshot file. Returns the removed entry, or `None` if
    /// the graph was not persisted.
    pub fn forget(&self, name: &str) -> io::Result<Option<ManifestEntry>> {
        let result = self.forget_inner(name);
        if result.is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn forget_inner(&self, name: &str) -> io::Result<Option<ManifestEntry>> {
        let removed = {
            // Same discipline as `save`: rewrite the manifest from a
            // scratch copy, commit to memory only on success.
            let mut entries = self.lock_entries();
            let Some(at) = entries.iter().position(|e| e.name == name) else {
                return Ok(None);
            };
            let mut next = entries.clone();
            let removed = next.remove(at);
            failpoint::check("store.forget.manifest")?;
            manifest::write(&self.manifest_path, &next)?;
            *entries = next;
            removed
        };
        match std::fs::remove_file(self.snapshot_path(&removed)) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let _ = self.record(AuditKind::Unload, Some(name), "");
        Ok(Some(removed))
    }

    /// Append an audit event; returns its sequence number. Audit I/O
    /// failures are returned but are safe for callers to ignore — the
    /// log is an observability aid, not a correctness dependency.
    pub fn record(&self, kind: AuditKind, graph: Option<&str>, detail: &str) -> io::Result<u64> {
        let result = self
            .audit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(kind, graph, detail);
        if result.is_err() {
            self.audit_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Snapshot/manifest write failures since this store was opened.
    pub fn io_error_count(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Audit-log append failures since this store was opened.
    pub fn audit_failure_count(&self) -> u64 {
        self.audit_failures.load(Ordering::Relaxed)
    }

    /// The sequence number the next audit append will use (monotonic
    /// across restarts).
    pub fn audit_next_seq(&self) -> u64 {
        self.audit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next_seq()
    }

    /// Replay the full on-disk audit history (rotated + live files).
    pub fn replay(&self) -> io::Result<Vec<AuditEvent>> {
        audit::replay(&self.audit_path)
    }

    fn lock_entries(&self) -> std::sync::MutexGuard<'_, Vec<ManifestEntry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_dirty(&self) -> std::sync::MutexGuard<'_, BTreeSet<String>> {
        self.dirty
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::{IndexConfig, QueryParams};
    use parscan_graph::generators;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_store_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn small_index(seed: u64) -> ScanIndex {
        let (g, _) = generators::planted_partition(200, 4, 9.0, 1.0, seed);
        ScanIndex::build(g, IndexConfig::default())
    }

    #[test]
    fn save_load_round_trip_with_manifest() {
        let dir = tmp_dir("roundtrip");
        let store = IndexStore::open(&dir).unwrap();
        let idx = small_index(1);
        let entry = store.save("boot", &idx, true, 256).unwrap();
        assert_eq!(entry.name, "boot");
        assert!(entry.pinned);
        assert_eq!(entry.cache_capacity, 256);
        assert!(entry.bytes > 0);

        let (loaded, entry2) = store.load("boot").unwrap();
        assert_eq!(entry2, entry);
        assert_eq!(loaded.graph(), idx.graph());
        let p = QueryParams::new(3, 0.4);
        assert_eq!(
            idx.cluster_with(p, parscan_core::BorderAssignment::MostSimilar),
            loaded.cluster_with(p, parscan_core::BorderAssignment::MostSimilar)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_working_set_and_audit_seq() {
        let dir = tmp_dir("reopen");
        {
            let store = IndexStore::open(&dir).unwrap();
            store.save("a", &small_index(1), true, 128).unwrap();
            store.save("b", &small_index(2), false, 64).unwrap();
        }
        let store = IndexStore::open(&dir).unwrap();
        let names: Vec<String> = store.entries().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["a", "b"]);
        // Two SAVE events happened; the next seq continues past them.
        assert!(store.audit_next_seq() >= 3, "{}", store.audit_next_seq());
        let events = store.replay().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind == AuditKind::Save));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_an_upsert() {
        let dir = tmp_dir("upsert");
        let store = IndexStore::open(&dir).unwrap();
        store.save("g", &small_index(1), false, 128).unwrap();
        let e2 = store.save("g", &small_index(2), false, 512).unwrap();
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.entry("g").unwrap(), e2);
        assert_eq!(e2.cache_capacity, 512);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forget_removes_entry_and_snapshot() {
        let dir = tmp_dir("forget");
        let store = IndexStore::open(&dir).unwrap();
        let entry = store.save("g", &small_index(1), false, 128).unwrap();
        let snap = store.snapshot_path(&entry);
        assert!(snap.exists());
        assert!(store.forget("g").unwrap().is_some());
        assert!(!snap.exists());
        assert!(store.entry("g").is_none());
        assert!(store.forget("g").unwrap().is_none(), "idempotent");
        // Survives reopen: the manifest no longer lists it.
        drop(store);
        let store = IndexStore::open(&dir).unwrap();
        assert!(store.entries().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_tracking_clears_on_save() {
        let dir = tmp_dir("dirty");
        let store = IndexStore::open(&dir).unwrap();
        assert!(store.dirty_names().is_empty());
        store.mark_dirty("g");
        store.mark_dirty("a");
        store.mark_dirty("g"); // idempotent
        assert!(store.is_dirty("g"));
        assert_eq!(store.dirty_names(), ["a", "g"]);
        store.save("g", &small_index(1), false, 128).unwrap();
        assert!(!store.is_dirty("g"), "SAVE clears the dirty flag");
        assert_eq!(store.dirty_names(), ["a"]);
        // MUTATE round-trips through the audit log.
        store
            .record(AuditKind::Mutate, Some("a"), "epoch=1")
            .unwrap();
        let events = store.replay().unwrap();
        assert!(events
            .iter()
            .any(|e| e.kind == AuditKind::Mutate && e.graph.as_deref() == Some("a")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_names_are_rejected() {
        let dir = tmp_dir("names");
        let store = IndexStore::open(&dir).unwrap();
        let idx = small_index(1);
        assert!(store.save("", &idx, false, 1).is_err());
        assert!(store.save("has space", &idx, false, 1).is_err());
        assert!(store.save("slash/y", &idx, false, 1).is_err());
        assert!(store.save(&"x".repeat(65), &idx, false, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_manifest_refuses_to_open() {
        let dir = tmp_dir("corrupt");
        {
            let store = IndexStore::open(&dir).unwrap();
            store.save("g", &small_index(1), false, 128).unwrap();
        }
        let manifest = dir.join("manifest.psm");
        let mut bytes = std::fs::read(&manifest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x11;
        std::fs::write(&manifest, &bytes).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_a_typed_load_error() {
        let dir = tmp_dir("snapcorrupt");
        let store = IndexStore::open(&dir).unwrap();
        let entry = store.save("g", &small_index(1), false, 128).unwrap();
        let snap = store.snapshot_path(&entry);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&snap, &bytes).unwrap();
        let err = store.load("g").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
