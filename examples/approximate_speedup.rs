//! The LSH trade-off (§5, Figures 8–10 in miniature): on dense graphs,
//! sketching beats exact triangle counting for index construction, and the
//! resulting clusterings stay close to exact.
//!
//! Run with: `cargo run --release --example approximate_speedup`

use parscan::metrics::adjusted_rand_index;
use parscan::prelude::*;
use std::time::Instant;

fn main() {
    // Dense graph — the regime where exact similarity computation is
    // expensive (arboricity large) and LSH pays off.
    let (g, _) = parscan::graph::generators::planted_partition(2500, 20, 90.0, 10.0, 21);
    println!(
        "dense graph: {} vertices, {} edges (avg degree {:.0})",
        g.num_vertices(),
        g.num_edges(),
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    );
    let params = QueryParams::new(5, 0.45);

    let t0 = Instant::now();
    let exact = ScanIndex::build(g.clone(), IndexConfig::default());
    let t_exact = t0.elapsed();
    let truth = exact
        .cluster_with(params, BorderAssignment::MostSimilar)
        .labels_with_singletons();
    println!("exact build: {t_exact:.2?}");

    println!("{:>7} {:>12} {:>9} {:>8}", "k", "build", "speedup", "ARI");
    for k in [16usize, 32, 64, 128, 256] {
        let config = ApproxConfig {
            method: ApproxMethod::SimHashCosine,
            samples: k,
            seed: 100 + k as u64,
            degree_heuristic: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let index = build_approx_index(g.clone(), config);
        let t_approx = t0.elapsed();
        let labels = index
            .cluster_with(params, BorderAssignment::MostSimilar)
            .labels_with_singletons();
        println!(
            "{:>7} {:>12.2?} {:>8.1}x {:>8.3}",
            k,
            t_approx,
            t_exact.as_secs_f64() / t_approx.as_secs_f64(),
            adjusted_rand_index(&truth, &labels)
        );
    }
    println!("\n(ARI is measured against the exact index's clustering at (μ=5, ε=0.45).)");
}
