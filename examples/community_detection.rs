//! Community detection with ground truth: generate a planted-partition
//! graph, recover communities with the SCAN index, and score against the
//! planted labels with the adjusted Rand index — comparing the exact index
//! with LSH-approximate indices at several sample counts (the §7.3.4
//! experiment in miniature).
//!
//! Run with: `cargo run --release --example community_detection`

use parscan::metrics::adjusted_rand_index;
use parscan::prelude::*;
use std::time::Instant;

fn main() {
    let (g, truth) = parscan::graph::generators::planted_partition(3000, 50, 16.0, 1.0, 5);
    println!(
        "planted partition: {} vertices, {} edges, 50 communities",
        g.num_vertices(),
        g.num_edges()
    );
    // Within-community similarity lands near 0.37 here (blocks of 60 at
    // p_in ≈ 0.27 share ≈ 4 neighbors per adjacent pair) while
    // cross-community similarity sits near 0.12 — ε = 0.3 splits them.
    let params = QueryParams::new(3, 0.3);

    // Exact index.
    let t0 = Instant::now();
    let exact = ScanIndex::build(g.clone(), IndexConfig::default());
    let t_exact = t0.elapsed();
    let c = exact.cluster_with(params, BorderAssignment::MostSimilar);
    let ari = adjusted_rand_index(&c.labels_with_singletons(), &truth);
    println!(
        "exact:             build {:>9.2?}  clusters {:>3}  ARI vs truth {:.3}",
        t_exact,
        c.num_clusters(),
        ari
    );

    // Approximate indices with increasing sample counts.
    for k in [32usize, 128, 512] {
        let config = ApproxConfig {
            method: ApproxMethod::SimHashCosine,
            samples: k,
            seed: k as u64,
            degree_heuristic: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let approx = build_approx_index(g.clone(), config);
        let t_approx = t0.elapsed();
        let c = approx.cluster_with(params, BorderAssignment::MostSimilar);
        let ari = adjusted_rand_index(&c.labels_with_singletons(), &truth);
        println!(
            "simhash k={k:<5}:   build {:>9.2?}  clusters {:>3}  ARI vs truth {:.3}",
            t_approx,
            c.num_clusters(),
            ari
        );
    }

    println!(
        "\n(The planted communities are dense blocks; SCAN recovers them when\n\
         ε separates intra-community similarity from inter-community noise.)"
    );
}
