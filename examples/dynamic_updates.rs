//! Dynamic batch updates — the paper's first future-work item (§9):
//! "extending our work to dynamic graphs by devising parallel algorithms
//! for processing batches of edge updates."
//!
//! A gene-network index (dense, weighted — the HumanBase regime) receives
//! batches of edge updates. `apply_batch` recomputes similarities only
//! for edges incident to batch endpoints and copies every other score,
//! then rebuilds the orders; a full rebuild recomputes every similarity.
//! The two produce bit-identical indices — verified each round.
//!
//! Honest performance note: the *similarity* phase is the part the
//! incremental path skips. On many-core machines at laptop graph sizes
//! the order-construction phase (two radix sorts over 2m entries) can
//! dominate both paths, so end-to-end gains are modest here and grow with
//! graph density and size — the same `O(αm)`-dominated regime where the
//! paper's LSH approximation pays off (§5).
//!
//! Run with: `cargo run --release --example dynamic_updates`

use parscan::core::dynamic::{apply_batch, BatchUpdate};
use parscan::core::similarity_exact::compute_full_merge;
use parscan::core::{ExactStrategy, IndexConfig};
use parscan::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 6_000;
    let (g, _) = parscan::graph::generators::weighted_planted_partition(n, 30, 160.0, 8.0, 3);
    println!(
        "weighted graph: {} vertices, {} edges (avg degree {:.0})",
        g.num_vertices(),
        g.num_edges(),
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    );

    // The incremental path recomputes touched similarities with exact
    // per-edge merges, so use the bit-identical strategy for the baseline.
    let config = IndexConfig {
        exact: ExactStrategy::FullMerge,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut index = ScanIndex::build(g.clone(), config);
    println!("initial build: {:.2?}", t0.elapsed());

    // How much of a rebuild is the similarity phase the update skips?
    let t0 = Instant::now();
    std::hint::black_box(compute_full_merge(index.graph(), SimilarityMeasure::Cosine));
    println!(
        "of which the similarity phase (what apply_batch avoids): {:.2?}",
        t0.elapsed()
    );

    let mut rng = StdRng::seed_from_u64(42);
    let params = QueryParams::new(4, 0.5);

    for round in 1..=3 {
        // A batch: 200 fresh edges plus 100 random deletions.
        let insertions: Vec<(u32, u32, f32)> = (0..200)
            .map(|_| {
                (
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0.5..1.0f32),
                )
            })
            .filter(|&(u, v, _)| u != v)
            .collect();
        let deletions: Vec<(u32, u32)> = index
            .graph()
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .step_by(index.graph().num_edges() / 100 + 1)
            .take(100)
            .collect();
        let batch = BatchUpdate {
            insertions,
            deletions,
        };

        // Incremental path.
        let t0 = Instant::now();
        index = apply_batch(index, &batch);
        let t_inc = t0.elapsed();

        // Full rebuild on the same new graph — must agree bit for bit.
        let t0 = Instant::now();
        let rebuilt = ScanIndex::build(index.graph().clone(), config);
        let t_full = t0.elapsed();
        assert_eq!(
            index.similarities().as_slice(),
            rebuilt.similarities().as_slice(),
            "incremental must equal rebuild"
        );

        let c = index.cluster_with(params, BorderAssignment::MostSimilar);
        println!(
            "batch {round}: +{} -{} edges | incremental {:.2?} vs rebuild {:.2?} | identical indices | {} clusters at (μ={}, ε={})",
            batch.insertions.len(),
            batch.deletions.len(),
            t_inc,
            t_full,
            c.num_clusters(),
            params.mu,
            params.epsilon,
        );
    }
}
