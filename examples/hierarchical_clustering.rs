//! Hierarchical clustering from the index — the paper's second
//! future-work item (§9): "quickly extracting hierarchical clusterings
//! from the SCAN index."
//!
//! For a fixed μ, decreasing ε only merges clusters, so the clusterings
//! form a dendrogram. `EpsilonHierarchy` extracts every merge in one
//! sweep; cutting it at any ε reproduces the core side of
//! `index.cluster(μ, ε)` without a fresh query. This example walks the
//! dendrogram of a nested-community graph and shows the cluster count
//! collapsing as ε relaxes.
//!
//! Run with: `cargo run --release --example hierarchical_clustering`

use parscan::core::hierarchy::EpsilonHierarchy;
use parscan::prelude::*;
use std::collections::HashSet;

fn main() {
    // Nested structure: dense 50-vertex communities, loosely tied in pairs.
    let (g, truth) = parscan::graph::generators::planted_partition(5_000, 100, 20.0, 1.0, 9);
    println!(
        "graph: {} vertices, {} edges, {} planted communities",
        g.num_vertices(),
        g.num_edges(),
        truth.iter().collect::<HashSet<_>>().len()
    );

    let index = ScanIndex::build(g, IndexConfig::default());
    let mu = 4;
    let t0 = std::time::Instant::now();
    let hierarchy = EpsilonHierarchy::build(&index, mu);
    println!(
        "hierarchy for μ={mu}: {} merges extracted in {:.2?}",
        hierarchy.merges().len(),
        t0.elapsed()
    );

    println!("\n{:>6} {:>10} {:>12}", "ε", "clusters", "query-agrees");
    for eps in [0.9f32, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1] {
        let cut = hierarchy.cut(eps);
        let clusters = hierarchy.num_clusters_at(eps);

        // The cut reproduces the query's core assignments exactly.
        let c = index.cluster(QueryParams::new(mu, eps));
        let agrees = (0..cut.len()).all(|v| {
            if c.is_core(v as u32) {
                cut[v] == c.labels[v]
            } else {
                true
            }
        });
        println!("{eps:>6.2} {clusters:>10} {agrees:>12}");
    }

    println!(
        "\none dendrogram sweep replaces {} per-ε queries at this μ",
        9
    );
}
