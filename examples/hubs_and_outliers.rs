//! Hubs and outliers — the capability that distinguishes SCAN from plain
//! partitioning (§1): vertices that bridge multiple clusters are *hubs*,
//! vertices attached to nothing dense are *outliers*.
//!
//! This example wires several dense communities together through a few
//! deliberate bridge vertices, adds stray pendant vertices, and shows that
//! SCAN labels them as hubs and outliers respectively.
//!
//! Run with: `cargo run --release --example hubs_and_outliers`

use parscan::core::hubs::{classify_roles, role_counts};
use parscan::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(17);
    let communities = 4usize;
    let size = 30usize;
    let n_bridges = 3usize;
    let n_pendants = 5usize;
    let n = communities * size + n_bridges + n_pendants;

    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Dense communities (each ~60% of a clique).
    for c in 0..communities {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                if rng.gen_bool(0.6) {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    // Bridge vertices: each connects sparsely into *every* community.
    let bridge_base = (communities * size) as u32;
    for b in 0..n_bridges as u32 {
        for c in 0..communities {
            let base = (c * size) as u32;
            for _ in 0..2 {
                edges.push((bridge_base + b, base + rng.gen_range(0..size as u32)));
            }
        }
    }
    // Pendant vertices: one random attachment each.
    let pendant_base = bridge_base + n_bridges as u32;
    for p in 0..n_pendants as u32 {
        edges.push((
            pendant_base + p,
            rng.gen_range(0..(communities * size) as u32),
        ));
    }

    let g = parscan::graph::from_edges(n, &edges);
    println!(
        "graph: {} vertices ({} community + {} bridge + {} pendant), {} edges",
        n,
        communities * size,
        n_bridges,
        n_pendants,
        g.num_edges()
    );

    let index = ScanIndex::build(g, IndexConfig::default());
    let clustering = index.cluster(QueryParams::new(4, 0.55));
    let roles = classify_roles(index.graph(), &clustering);

    println!(
        "clusters: {}  |  {:?}",
        clustering.num_clusters(),
        role_counts(&roles)
    );
    for b in 0..n_bridges as u32 {
        println!(
            "bridge vertex {} → {:?}",
            bridge_base + b,
            roles[(bridge_base + b) as usize]
        );
    }
    for p in 0..n_pendants as u32 {
        println!(
            "pendant vertex {} → {:?}",
            pendant_base + p,
            roles[(pendant_base + p) as usize]
        );
    }
}
