//! Index persistence — amortizing construction across program runs.
//!
//! GS*-Index's pitch (§1, §3.2) is "construct once, query many times".
//! This example pushes the amortization one step further: the index is
//! serialized to disk, reloaded (as a later analysis session would), and
//! verified to answer queries identically — at a load cost that is pure
//! I/O, far below reconstruction.
//!
//! Run with: `cargo run --release --example index_persistence`

use parscan::core::sweep::{sweep, SweepGrid};
use parscan::metrics::modularity;
use parscan::prelude::*;
use std::time::Instant;

fn main() {
    // Dense weighted tissue-network regime: the expensive-to-index case.
    let (g, _) = parscan::graph::generators::weighted_planted_partition(8_000, 40, 140.0, 6.0, 7);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Session 1: build and persist.
    let t0 = Instant::now();
    let index = ScanIndex::build(g, IndexConfig::default());
    let t_build = t0.elapsed();
    let path = std::env::temp_dir().join("parscan_example.pscidx");
    let t0 = Instant::now();
    index.save(&path).expect("save index");
    let t_save = t0.elapsed();
    let on_disk = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "built in {t_build:.2?}; saved {:.1} MiB in {t_save:.2?}",
        on_disk as f64 / (1 << 20) as f64
    );

    // Session 2: reload and explore parameters without reconstructing.
    let t0 = Instant::now();
    let loaded = ScanIndex::load(&path).expect("load index");
    let t_load = t0.elapsed();
    println!(
        "reloaded in {t_load:.2?} (build was {:.1}x that; the gap widens with density and scale)",
        t_build.as_secs_f64() / t_load.as_secs_f64().max(1e-9)
    );

    // A quality sweep against the reloaded index (the intended workflow).
    let grid = SweepGrid::coarse(loaded.graph().max_degree() as u32 + 1);
    let t0 = Instant::now();
    let result = sweep(&loaded, &grid, |c| {
        if c.num_clusters() == 0 {
            f64::NEG_INFINITY
        } else {
            modularity(loaded.graph(), &c.labels_with_singletons())
        }
    });
    let best = result.best_params();
    println!(
        "swept {} grid points in {:.2?}: best modularity {:.4} at (μ={}, ε={:.2})",
        result.points.len(),
        t0.elapsed(),
        result.best_score(),
        best.mu,
        best.epsilon
    );

    // Identical answers before and after the round trip, at the best point.
    let a = index.cluster_with(best, BorderAssignment::MostSimilar);
    let b = loaded.cluster_with(best, BorderAssignment::MostSimilar);
    assert_eq!(a, b, "round trip must preserve clusterings");
    println!(
        "spot check at the best point: {} clusters, identical across the round trip",
        b.num_clusters()
    );

    std::fs::remove_file(&path).ok();
}
