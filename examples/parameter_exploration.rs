//! Parameter exploration — the paper's motivating workload (§1): users of
//! SCAN "often explore many parameter settings to find good clusterings",
//! so precomputing an index that answers every (μ, ε) quickly beats
//! re-running SCAN per setting.
//!
//! This example builds the index once, sweeps a (μ, ε) grid, scores every
//! clustering by modularity, and reports the best — then shows what the
//! same sweep costs without the index (re-running pruned SCAN per query).
//!
//! Run with: `cargo run --release --example parameter_exploration`

use parscan::baselines::ppscan_parallel;
use parscan::metrics::modularity;
use parscan::prelude::*;
use std::time::Instant;

fn main() {
    let (g, _) = parscan::graph::generators::planted_partition(4000, 25, 18.0, 2.0, 11);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Grid in the spirit of Σ (Equation 1), coarsened for the demo.
    let mut grid = Vec::new();
    for mu in [2u32, 4, 8, 16, 32] {
        for e in 1..=18 {
            grid.push(QueryParams::new(mu, e as f32 * 0.05));
        }
    }
    println!("sweeping {} parameter settings", grid.len());

    // Index path: one construction, then cheap output-sensitive queries.
    let t0 = Instant::now();
    let index = ScanIndex::build(g.clone(), IndexConfig::default());
    let t_build = t0.elapsed();
    let t0 = Instant::now();
    let mut best = (f64::NEG_INFINITY, grid[0]);
    for &params in &grid {
        let c = index.cluster_with(params, BorderAssignment::MostSimilar);
        if c.num_clusters() == 0 {
            continue;
        }
        let q = modularity(&g, &c.labels_with_singletons());
        if q > best.0 {
            best = (q, params);
        }
    }
    let t_queries = t0.elapsed();
    println!(
        "index: build {:.2?}, {} queries in {:.2?} ({:.2?}/query)",
        t_build,
        grid.len(),
        t_queries,
        t_queries / grid.len() as u32
    );
    println!(
        "best modularity {:.4} at (μ={}, ε={:.2})",
        best.0, best.1.mu, best.1.epsilon
    );

    // Index-free path for comparison: every query pays similarity work.
    let t0 = Instant::now();
    for &params in grid.iter().take(10) {
        std::hint::black_box(ppscan_parallel(
            &g,
            SimilarityMeasure::Cosine,
            params.mu,
            params.epsilon,
        ));
    }
    let per_query = t0.elapsed() / 10;
    println!(
        "ppSCAN (no index): ~{:.2?}/query → full sweep would cost ~{:.2?}",
        per_query,
        per_query * grid.len() as u32
    );
}
