//! Quickstart: build a SCAN index, query a clustering, inspect roles.
//!
//! Uses the worked example from the paper (Figure 1): 11 vertices, two
//! clusters, one hub, two outliers.
//!
//! Run with: `cargo run --release --example quickstart`

use parscan::core::hubs::{classify_roles, role_counts};
use parscan::prelude::*;

fn main() {
    // The paper's Figure 1 graph (0-indexed: paper vertex i is i-1 here).
    let g = parscan::graph::generators::paper_figure1();
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Build the index once — this is the expensive part (similarities +
    // neighbor order + core order), parallelized across all cores.
    let index = ScanIndex::build(g, IndexConfig::default());

    // Query any (μ, ε) cheaply. The paper's example uses μ=3, ε=0.6.
    let clustering = index.cluster(QueryParams::new(3, 0.6));
    println!("clusters found: {}", clustering.num_clusters());
    for (label, members) in clustering.members() {
        let paper_ids: Vec<u32> = members.iter().map(|v| v + 1).collect();
        println!("  cluster {label}: paper vertices {paper_ids:?}");
    }

    // Classify the rest: hubs bridge clusters, outliers dangle.
    let roles = classify_roles(index.graph(), &clustering);
    for (v, role) in roles.iter().enumerate() {
        match role {
            VertexRole::Hub => println!("  paper vertex {} is a HUB", v + 1),
            VertexRole::Outlier => println!("  paper vertex {} is an outlier", v + 1),
            _ => {}
        }
    }
    println!("role counts: {:?}", role_counts(&roles));

    // The same index answers other parameter settings instantly.
    for (mu, eps) in [(2u32, 0.5f32), (2, 0.8), (4, 0.6)] {
        let c = index.cluster(QueryParams::new(mu, eps));
        println!(
            "(μ={mu}, ε={eps}): {} clusters, {} vertices clustered",
            c.num_clusters(),
            c.num_clustered()
        );
    }
}
