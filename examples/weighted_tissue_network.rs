//! Weighted-graph clustering, in the style of the paper's HumanBase
//! tissue networks (blood vessel / cochlea, Table 2): vertices are genes,
//! edges carry the probability of a functional relationship, and weighted
//! cosine similarity (§4.1.1) drives the clustering.
//!
//! Run with: `cargo run --release --example weighted_tissue_network`

use parscan::core::hubs::{classify_roles, role_counts};
use parscan::metrics::{adjusted_rand_index, modularity};
use parscan::prelude::*;

fn main() {
    // Dense weighted planted partition: small n, high average degree,
    // probability-like weights — the tissue-network regime.
    let (g, truth) = parscan::graph::generators::weighted_planted_partition(1500, 12, 70.0, 8.0, 3);
    println!(
        "weighted network: {} vertices, {} edges (avg degree {:.0})",
        g.num_vertices(),
        g.num_edges(),
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    );

    let index = ScanIndex::build(g.clone(), IndexConfig::default());

    // Sweep ε at μ = 5 and report quality at each setting.
    println!(
        "{:>5} {:>9} {:>10} {:>12} {:>10}",
        "ε", "clusters", "clustered", "modularity", "ARI(truth)"
    );
    let mut best = (f64::NEG_INFINITY, QueryParams::new(5, 0.05));
    for e in 1..=18 {
        let params = QueryParams::new(5, e as f32 * 0.05);
        let c = index.cluster_with(params, BorderAssignment::MostSimilar);
        let q = modularity(&g, &c.labels_with_singletons());
        let ari = adjusted_rand_index(&c.labels_with_singletons(), &truth);
        println!(
            "{:>5.2} {:>9} {:>10} {:>12.4} {:>10.3}",
            params.epsilon,
            c.num_clusters(),
            c.num_clustered(),
            q,
            ari
        );
        if q > best.0 {
            best = (q, params);
        }
    }

    let c = index.cluster_with(best.1, BorderAssignment::MostSimilar);
    let roles = classify_roles(index.graph(), &c);
    println!(
        "\nbest setting (μ={}, ε={:.2}): modularity {:.4}, {:?}",
        best.1.mu,
        best.1.epsilon,
        best.0,
        role_counts(&roles)
    );
}
