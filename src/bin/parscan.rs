//! `parscan` — command-line structural graph clustering.
//!
//! Subcommands:
//!
//! ```text
//! parscan stats    <graph>                         graph statistics
//! parscan index    <graph> --out FILE.pscidx       build & persist an index
//!                  [--jaccard] [--approx K]
//! parscan cluster  <graph|index> --mu M --eps E    one SCAN clustering
//!                  [--jaccard] [--approx K] [--out FILE]
//! parscan sweep    <graph|index> [--eps-step S]    grid-search best modularity
//! parscan serve    [graph|index] --port P          TCP query server over one or
//!                  [--host H] [--cache N]          more resident indexes
//!                  [--name NAME] [--graph NAME=PATH]...
//!                  [--budget MIB] [--max-graphs N]
//!                  [--workers N] [--max-conns N]    reactor sizing and
//!                  [--queue N]                      admission-control bounds
//!                  [--store-dir DIR]               durable store: SAVE verb +
//!                                                  warm boot on restart
//!                  [--deadline-ms MS]              per-request deadline
//!                  [--idle-timeout MS]             reap idle connections
//!                  [--watchdog-ms MS]              stuck-worker threshold
//! parscan convert  <in> <out>                      convert between formats
//! parscan generate <kind> --n N --out FILE         synthetic graphs
//!                  (kinds: rmat, er, sbm, wsbm)
//! ```
//!
//! Graph files are detected by extension: `.bin` (parscan binary),
//! `.graph`/`.metis` (METIS), anything else is a whitespace edge list
//! (`u v` or `u v w` per line, `#`/`%` comments). Index files use the
//! `.pscidx` extension and the checksummed format of `parscan::core::persist`.

use parscan::core::hubs::{classify_roles, role_counts};
use parscan::core::sweep::{sweep, SweepGrid};
use parscan::metrics::modularity;
use parscan::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  parscan stats    <graph>
  parscan index    <graph> --out FILE.pscidx [--jaccard] [--approx K]
  parscan cluster  <graph|index.pscidx> --mu M --eps E [--jaccard] [--approx K] [--out FILE]
  parscan sweep    <graph|index.pscidx> [--eps-step S]
  parscan serve    [graph|index.pscidx] --port P [--host H] [--cache N] [--jaccard] [--approx K]
                   [--name NAME] [--graph NAME=PATH]... [--budget MIB] [--max-graphs N]
                   [--workers N] [--max-conns N] [--queue N]   (reactor + admission bounds)
                   [--store-dir DIR]   (path optional when DIR warm-boots a saved working set)
                   [--deadline-ms MS] [--idle-timeout MS] [--watchdog-ms MS]   (resilience knobs)
  parscan convert  <in> <out>          (formats by extension: .bin, .graph/.metis, text)
  parscan generate (rmat|er|sbm|wsbm) --n N [--deg D] [--seed S] --out FILE";

/// Pull `--name value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Every value of a repeatable `--name value` flag, in order.
fn flag_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    flag(args, name)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("bad value {v:?} for {name}"))
        })
        .transpose()
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let load = if path.ends_with(".bin") {
        parscan::graph::io::read_binary(path)
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        parscan::graph::metis::read_metis(path)
    } else {
        parscan::graph::io::read_edge_list_text(path, None)
    };
    load.map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_graph(g: &CsrGraph, path: &str) -> Result<(), String> {
    let write = if path.ends_with(".bin") {
        parscan::graph::io::write_binary(g, path)
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        parscan::graph::metis::write_metis(g, path)
    } else {
        parscan::graph::io::write_edge_list_text(g, path)
    };
    write.map_err(|e| format!("cannot write {path}: {e}"))
}

/// Build an index per the shared `--jaccard` / `--approx` flags.
fn build_index(g: CsrGraph, args: &[String]) -> Result<ScanIndex, String> {
    let measure = if has_flag(args, "--jaccard") {
        SimilarityMeasure::Jaccard
    } else {
        SimilarityMeasure::Cosine
    };
    Ok(match parse::<usize>(args, "--approx")? {
        Some(k) => {
            let method = if measure == SimilarityMeasure::Jaccard {
                ApproxMethod::KPartitionMinHashJaccard
            } else {
                ApproxMethod::SimHashCosine
            };
            build_approx_index(
                g,
                ApproxConfig {
                    method,
                    samples: k,
                    ..Default::default()
                },
            )
        }
        None => ScanIndex::build(g, IndexConfig::with_measure(measure)),
    })
}

/// Load a persisted index, or build one from a graph file on the fly.
fn load_or_build_index(path: &str, args: &[String]) -> Result<ScanIndex, String> {
    if path.ends_with(".pscidx") {
        ScanIndex::load(path).map_err(|e| format!("cannot load index {path}: {e}"))
    } else {
        build_index(load_graph(path)?, args)
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a graph path")?;
    let g = load_graph(path)?;
    let s = parscan::graph::stats::graph_stats(&g);
    println!("vertices     {}", s.n);
    println!("edges        {}", s.m);
    println!(
        "degrees      min {} / avg {:.2} / max {}",
        s.min_degree, s.avg_degree, s.max_degree
    );
    println!("triangles    {}", s.triangles);
    println!("degeneracy   {}", s.degeneracy);
    println!("components   {}", s.components);
    println!("weighted     {}", s.weighted);
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("index needs a graph path")?;
    let out = flag(args, "--out").ok_or("--out is required (suggest .pscidx)")?;
    let g = load_graph(path)?;
    let start = std::time::Instant::now();
    let index = build_index(g, args)?;
    let built = start.elapsed();
    index
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "indexed {} vertices / {} edges in {:.2?} (~{} MiB) -> {out}",
        index.graph().num_vertices(),
        index.graph().num_edges(),
        built,
        index.memory_bytes() / (1 << 20),
    );
    Ok(())
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("cluster needs a graph or index path")?;
    let mu: u32 = parse(args, "--mu")?.ok_or("--mu is required (μ ≥ 2)")?;
    let eps: f32 = parse(args, "--eps")?.ok_or("--eps is required (ε ∈ [0,1])")?;
    let index = load_or_build_index(path, args)?;

    let params = QueryParams::try_new(mu, eps).map_err(|e| e.to_string())?;
    let clustering = index.cluster_with(params, BorderAssignment::MostSimilar);
    let roles = classify_roles(index.graph(), &clustering);
    println!(
        "clusters {}  |  {:?}  |  modularity {:.4}",
        clustering.num_clusters(),
        role_counts(&roles),
        modularity(index.graph(), &clustering.labels_with_singletons())
    );

    if let Some(out) = flag(args, "--out") {
        let mut body = String::from("# vertex cluster role\n");
        for v in 0..clustering.labels.len() {
            let label = clustering.labels[v];
            let label_str = if label == UNCLUSTERED {
                "-".to_string()
            } else {
                label.to_string()
            };
            body.push_str(&format!("{v} {label_str} {:?}\n", roles[v]));
        }
        std::fs::write(&out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote assignments to {out}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sweep needs a graph or index path")?;
    let step: f32 = parse(args, "--eps-step")?.unwrap_or(0.05);
    if !(0.0..1.0).contains(&step) || step <= 0.0 {
        return Err(format!("--eps-step must be in (0, 1), got {step}"));
    }
    let index = load_or_build_index(path, args)?;
    let g = index.graph();

    let max_mu = (g.max_degree() as u32 + 1).max(2);
    let mut epsilons = Vec::new();
    let mut eps = step;
    while eps < 1.0 {
        epsilons.push(eps);
        eps += step;
    }
    let grid = SweepGrid {
        mus: SweepGrid::paper_sigma(max_mu).mus,
        epsilons,
    };
    let result = sweep(&index, &grid, |c| {
        if c.num_clusters() == 0 {
            f64::NEG_INFINITY
        } else {
            modularity(g, &c.labels_with_singletons())
        }
    });
    // Report the per-μ bests so the quality surface is visible.
    for &mu in &grid.mus {
        if let Some(p) = result
            .points
            .iter()
            .filter(|p| p.params.mu == mu && p.score.is_finite())
            .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite"))
        {
            println!(
                "μ={:<6} best modularity {:.4} at ε={:.2} ({} clusters, {} clustered)",
                mu, p.score, p.params.epsilon, p.num_clusters, p.num_clustered
            );
        }
    }
    let best = result.best_params();
    println!(
        "best: modularity {:.4} at (μ={}, ε={:.2})",
        result.best_score(),
        best.mu,
        best.epsilon
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use parscan::server::{serve_with_config, serve_with_store_and_config, warm_boot, ServeConfig};
    use parscan::store::IndexStore;
    use std::sync::Arc;

    // The graph path is optional when a store directory can warm-boot
    // the working set instead.
    let path = args.first().filter(|a| !a.starts_with('-'));
    let port: u16 = parse(args, "--port")?.ok_or("--port is required")?;
    let host = flag(args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let cache: usize = parse(args, "--cache")?.unwrap_or(128);
    let budget_mib: Option<usize> = parse(args, "--budget")?;
    let max_graphs: usize = parse(args, "--max-graphs")?.unwrap_or(64);
    let store_dir = flag(args, "--store-dir");
    // Fault injection is armed only via the environment so production
    // invocations never pay for (or accidentally enable) it.
    failpoint::init_from_env();
    let defaults = ServeConfig::default();
    let serve_config = ServeConfig {
        workers: parse(args, "--workers")?.unwrap_or(defaults.workers),
        max_connections: parse(args, "--max-conns")?.unwrap_or(defaults.max_connections),
        queue_limit: parse(args, "--queue")?.unwrap_or(defaults.queue_limit),
        deadline: parse::<u64>(args, "--deadline-ms")?
            .map(std::time::Duration::from_millis)
            .or(defaults.deadline),
        idle_timeout: parse::<u64>(args, "--idle-timeout")?
            .map(std::time::Duration::from_millis)
            .or(defaults.idle_timeout),
        watchdog_stuck_after: parse::<u64>(args, "--watchdog-ms")?
            .map(std::time::Duration::from_millis)
            .unwrap_or(defaults.watchdog_stuck_after),
        ..defaults
    };

    let store = store_dir
        .map(|dir| IndexStore::open(&dir).map_err(|e| format!("cannot open store {dir}: {e}")))
        .transpose()?
        .map(Arc::new);
    if path.is_none() && store.is_none() {
        return Err("serve needs a graph or index path (or --store-dir)".into());
    }

    // The default graph's name: --name wins; otherwise the store's
    // pinned manifest entry (the previous run's default); else "default".
    let boot_name = flag(args, "--name")
        .or_else(|| {
            store.as_ref().and_then(|s| {
                s.entries()
                    .iter()
                    .find(|e| e.pinned)
                    .map(|e| e.name.clone())
            })
        })
        .unwrap_or_else(|| "default".to_string());

    let registry = Arc::new(GraphRegistry::new(
        boot_name.clone(),
        RegistryConfig {
            byte_budget: budget_mib.map(|m| m * (1 << 20)),
            max_graphs,
            engine: EngineConfig {
                cache_capacity: cache,
                ..Default::default()
            },
        },
    ));

    // Warm boot: repopulate the registry from snapshots, no rebuilds.
    if let Some(store) = &store {
        let report = warm_boot(&registry, store);
        if !report.loaded.is_empty() {
            println!(
                "warm boot: {} graph(s) restored from {} in {} ms",
                report.loaded.len(),
                store.dir().display(),
                report.millis,
            );
        }
        for (name, why) in &report.skipped {
            eprintln!("warm boot: skipped @{name}: {why}");
        }
    }

    // The boot graph honors --jaccard/--approx; additional graphs
    // (preloaded here or LOADed at runtime) use the default index
    // configuration, exactly like the protocol's LOAD command. A warm
    // boot that already restored the default graph wins over the path
    // argument — loading a snapshot beats rebuilding an index.
    if registry.get(None).is_err() {
        let path = path.ok_or_else(|| {
            format!("the store has no snapshot of {boot_name:?}; serve needs a graph path")
        })?;
        let index = load_or_build_index(path, args)?;
        registry
            .install(boot_name.clone(), index)
            .map_err(|e| e.to_string())?;
    }
    for spec in flag_values(args, "--graph") {
        let (name, gpath) = spec
            .split_once('=')
            .ok_or_else(|| format!("--graph expects NAME=PATH, got {spec:?}"))?;
        // A name the warm boot already restored reports AlreadyLoaded:
        // the snapshot wins over rebuilding from the path.
        registry.load_path(name, gpath).map_err(|e| e.to_string())?;
    }

    let server = match &store {
        Some(store) => serve_with_store_and_config(
            Arc::clone(&registry),
            Arc::clone(store),
            (host.as_str(), port),
            serve_config,
        ),
        None => serve_with_config(Arc::clone(&registry), (host.as_str(), port), serve_config),
    }
    .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;
    let stats = registry.stats();
    println!(
        "serving {} graph(s) on {} (~{} MiB resident{}, cache {cache}/graph{}); \
         line protocol: [@graph] CLUSTER/PROBE/SWEEP/STATS, [@graph] INSERT/DELETE/APPLY, \
         LOAD/UNLOAD/SAVE/LIST, BATCH/PING/QUIT/SHUTDOWN",
        stats.graphs,
        server.addr(),
        stats.bytes_resident / (1 << 20),
        match stats.byte_budget {
            Some(b) => format!(" of {} MiB budget", b / (1 << 20)),
            None => String::new(),
        },
        match &store {
            Some(s) => format!(", store {}", s.dir().display()),
            None => String::new(),
        },
    );
    for info in registry.list() {
        println!(
            "  @{}{}: {} vertices / {} edges, {} ε-breakpoints (~{} MiB)",
            info.name,
            if info.is_default { " (default)" } else { "" },
            info.vertices,
            info.edges,
            info.breakpoints,
            info.bytes / (1 << 20),
        );
    }
    // Runs until a client sends SHUTDOWN.
    server.wait();
    println!("server stopped");
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert needs exactly <in> <out>".into());
    };
    let g = load_graph(input)?;
    write_graph(&g, output)?;
    println!(
        "converted {input} -> {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    use parscan::graph::generators as gen;
    let kind = args
        .first()
        .ok_or("generate needs a kind (rmat|er|sbm|wsbm)")?;
    let out = flag(args, "--out").ok_or("--out is required")?;
    let n: usize = parse(args, "--n")?.unwrap_or(10_000);
    let deg: f64 = parse(args, "--deg")?.unwrap_or(16.0);
    let seed: u64 = parse(args, "--seed")?.unwrap_or(1);
    let communities: usize = parse(args, "--communities")?.unwrap_or(16);

    let g = match kind.as_str() {
        "rmat" => {
            let scale = (n as f64).log2().ceil() as u32;
            gen::rmat(scale, deg as usize / 2, seed)
        }
        "er" => gen::erdos_renyi(n, (n as f64 * deg / 2.0) as usize, seed),
        "sbm" => gen::planted_partition(n, communities, deg * 0.85, deg * 0.15, seed).0,
        "wsbm" => gen::weighted_planted_partition(n, communities, deg * 0.85, deg * 0.15, seed).0,
        other => return Err(format!("unknown generator {other:?}")),
    };
    write_graph(&g, &out)?;
    println!(
        "wrote {} ({} vertices, {} edges) to {out}",
        kind,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}
