//! # parscan — Parallel Index-Based Structural Graph Clustering
//!
//! A Rust reproduction of *"Parallel Index-Based Structural Graph
//! Clustering and Its Approximation"* (Tseng, Dhulipala, Shun — SIGMOD
//! 2021): a parallel GS*-Index-style SCAN index with output-sensitive
//! clustering queries, plus LSH-approximated similarities (SimHash /
//! MinHash) with provable classification guarantees.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`graph`] — CSR graphs, builders, generators, I/O: edge-list text,
//!   binary, METIS ([`parscan_graph`])
//! - [`core`] — the SCAN index, queries, persistence, the (μ, ε) sweep
//!   engine, batch dynamic updates, and ε-hierarchies ([`parscan_core`])
//! - [`approx`] — LSH approximation ([`parscan_approx`])
//! - [`baselines`] — original SCAN, sequential GS*-Index, pSCAN/ppSCAN,
//!   SCAN-XP ([`parscan_baselines`])
//! - [`dense`] — matmul similarities for dense graphs ([`parscan_dense`])
//! - [`metrics`] — modularity, ARI & NMI ([`parscan_metrics`])
//! - [`parallel`] — the fork-join substrate: flat pool, primitives, and a
//!   nested work-stealing `join` ([`parscan_parallel`])
//! - [`server`] — concurrent query serving: named resident indexes in a
//!   byte-budgeted [`GraphRegistry`](parscan_server::GraphRegistry),
//!   cached [`QueryEngine`](parscan_server::QueryEngine)s with in-flight
//!   request coalescing, batched execution, and a TCP line/JSON protocol
//!   ([`parscan_server`]; see `docs/PROTOCOL.md`)
//! - [`store`] — the durable index store: versioned snapshots, a
//!   checksummed registry manifest, an append-only audit log, and the
//!   warm-boot path that restarts a server without rebuilding indexes
//!   ([`parscan_store`])
//!
//! ## Quick start
//!
//! ```
//! use parscan::prelude::*;
//!
//! // A graph with ten tight planted communities (σ within a community
//! // lands around 0.4 at this density).
//! let (g, _truth) = parscan::graph::generators::planted_partition(400, 10, 12.0, 1.0, 42);
//!
//! // Build the index once...
//! let index = ScanIndex::build(g, IndexConfig::default());
//!
//! // ...then query any (μ, ε) cheaply.
//! let clustering = index.cluster(QueryParams::new(3, 0.35));
//! assert!(clustering.num_clusters() >= 2);
//! ```

pub use parscan_approx as approx;
pub use parscan_baselines as baselines;
pub use parscan_core as core;
pub use parscan_dense as dense;
pub use parscan_graph as graph;
pub use parscan_metrics as metrics;
pub use parscan_parallel as parallel;
pub use parscan_server as server;
pub use parscan_store as store;

/// The types most programs need.
pub mod prelude {
    pub use parscan_approx::{build_approx_index, ApproxConfig, ApproxMethod};
    pub use parscan_core::{
        BorderAssignment, Clustering, CoreConnectivity, IndexConfig, QueryOptions, QueryParamError,
        QueryParams, ScanIndex, SimilarityMeasure, VertexProbe, VertexRole, UNCLUSTERED,
    };
    pub use parscan_graph::{CsrGraph, VertexId};
    pub use parscan_server::{
        serve, serve_engine, serve_with_store, warm_boot, EngineConfig, GraphRegistry, QueryEngine,
        RegistryConfig, ServerHandle,
    };
    pub use parscan_store::IndexStore;
}
