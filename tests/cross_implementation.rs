//! Cross-implementation equivalence: the parallel index, the original
//! sequential SCAN, the sequential GS*-Index, and both pruned-SCAN
//! variants must produce the *same* SCAN clustering for equal parameters
//! (identical cores and core labels; identical clustered-vertex sets —
//! border labels may differ within SCAN's allowed ambiguity, §3.1).

use parscan::baselines::{
    original_scan, ppscan_parallel, pscan_sequential, scanxp_parallel, SequentialGsIndex,
};
use parscan::prelude::*;

fn assert_equivalent(name: &str, want: &Clustering, got: &Clustering) {
    assert_eq!(want.core, got.core, "{name}: core sets differ");
    assert_eq!(
        want.num_clusters(),
        got.num_clusters(),
        "{name}: cluster counts differ"
    );
    for v in 0..want.labels.len() {
        if want.core[v] {
            assert_eq!(want.labels[v], got.labels[v], "{name}: core {v} label");
        }
        assert_eq!(
            want.labels[v] == UNCLUSTERED,
            got.labels[v] == UNCLUSTERED,
            "{name}: membership of vertex {v}"
        );
        if got.labels[v] != UNCLUSTERED && !got.core[v] {
            // A border's label must be the label of one of its clusters'
            // cores — checked indirectly: the label must name a vertex
            // that is a clustered core with that same label.
            let rep = got.labels[v] as usize;
            assert!(got.core[rep], "{name}: border {v} labeled by non-core");
            assert_eq!(got.labels[rep], got.labels[v]);
        }
    }
}

fn full_grid_check(g: &parscan::graph::CsrGraph, measure: SimilarityMeasure) {
    let index = ScanIndex::build(g.clone(), IndexConfig::with_measure(measure));
    let gs = SequentialGsIndex::build(g, measure);
    for mu in [2u32, 3, 4, 8, 16] {
        for eps in [0.05f32, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95] {
            let want = original_scan(g, measure, mu, eps);
            let got_index = index.cluster(QueryParams::new(mu, eps));
            assert_equivalent("parallel-index", &want, &got_index);
            let got_ms =
                index.cluster_with(QueryParams::new(mu, eps), BorderAssignment::MostSimilar);
            assert_equivalent("parallel-index-most-similar", &want, &got_ms);
            let got_gs = gs.query(mu, eps);
            assert_equivalent("gs-index", &want, &got_gs);
            let got_pscan = pscan_sequential(g, measure, mu, eps);
            assert_equivalent("pscan", &want, &got_pscan);
            let got_ppscan = ppscan_parallel(g, measure, mu, eps);
            assert_equivalent("ppscan", &want, &got_ppscan);
            let got_xp = scanxp_parallel(g, measure, mu, eps);
            assert_equivalent("scanxp", &want, &got_xp);
        }
    }
}

#[test]
fn all_implementations_agree_on_random_graphs() {
    for seed in [1u64, 2] {
        let g = parscan::graph::generators::erdos_renyi(250, 1800, seed);
        full_grid_check(&g, SimilarityMeasure::Cosine);
    }
}

#[test]
fn all_implementations_agree_on_clustered_graphs() {
    let (g, _) = parscan::graph::generators::planted_partition(300, 6, 10.0, 1.0, 3);
    full_grid_check(&g, SimilarityMeasure::Cosine);
}

#[test]
fn all_implementations_agree_on_skewed_graphs() {
    let g = parscan::graph::generators::rmat(9, 8, 4);
    full_grid_check(&g, SimilarityMeasure::Cosine);
}

#[test]
fn all_implementations_agree_with_jaccard() {
    let (g, _) = parscan::graph::generators::planted_partition(200, 8, 9.0, 1.0, 5);
    full_grid_check(&g, SimilarityMeasure::Jaccard);
}

#[test]
fn weighted_index_matches_original_scan() {
    // Weighted graphs: only our implementations support them (the
    // baselines reject, as in the paper) — compare index vs original SCAN.
    let (g, _) = parscan::graph::generators::weighted_planted_partition(250, 5, 12.0, 1.5, 7);
    let index = ScanIndex::build(g.clone(), IndexConfig::default());
    for mu in [2u32, 3, 6] {
        for eps in [0.2f32, 0.4, 0.6, 0.8] {
            let want = original_scan(&g, SimilarityMeasure::Cosine, mu, eps);
            let got = index.cluster(QueryParams::new(mu, eps));
            assert_equivalent("weighted-index", &want, &got);
        }
    }
}

#[test]
fn clustering_is_invariant_under_relabeling() {
    // Permuting vertex ids must permute the clustering accordingly.
    let (g, _) = parscan::graph::generators::planted_partition(150, 5, 9.0, 1.0, 9);
    let n = g.num_vertices();
    // Deterministic permutation: reverse.
    let perm: Vec<u32> = (0..n as u32).rev().collect();
    let h = parscan::graph::builder::relabel(&g, &perm);

    let ig = ScanIndex::build(g, IndexConfig::default());
    let ih = ScanIndex::build(h, IndexConfig::default());
    let params = QueryParams::new(3, 0.5);
    let cg = ig.cluster_with(params, BorderAssignment::MostSimilar);
    let ch = ih.cluster_with(params, BorderAssignment::MostSimilar);

    for v in 0..n {
        let pv = perm[v] as usize;
        assert_eq!(cg.core[v], ch.core[pv], "core flag of {v}");
        assert_eq!(
            cg.labels[v] == UNCLUSTERED,
            ch.labels[pv] == UNCLUSTERED,
            "membership of {v}"
        );
    }
    // Cluster structure is isomorphic: same multiset of cluster sizes.
    let mut sizes_g: Vec<usize> = cg.members().values().map(Vec::len).collect();
    let mut sizes_h: Vec<usize> = ch.members().values().map(Vec::len).collect();
    sizes_g.sort_unstable();
    sizes_h.sort_unstable();
    assert_eq!(sizes_g, sizes_h);
}
