//! End-to-end pipelines spanning every crate: generate → persist → reload
//! → index → query → classify → score.

use parscan::core::hubs::{classify_roles, role_counts};
use parscan::metrics::{adjusted_rand_index, modularity};
use parscan::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("parscan_e2e_{name}_{}", std::process::id()));
    p
}

#[test]
fn generate_persist_reload_cluster() {
    let (g, truth) = parscan::graph::generators::planted_partition(800, 8, 14.0, 1.0, 42);
    let path = tmp("roundtrip");
    parscan::graph::io::write_binary(&g, &path).unwrap();
    let reloaded = parscan::graph::io::read_binary(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, reloaded);

    let index = ScanIndex::build(reloaded, IndexConfig::default());
    // ε = 0.25 sits at this generator's within-community similarity level
    // (adjacent same-community vertices share ≈ p_in²·c ≈ 2 open neighbors
    // at p_in = 0.14, c = 100, so σ ≈ 4/16); ε = 0.5 would yield no cores.
    let c = index.cluster_with(QueryParams::new(3, 0.25), BorderAssignment::MostSimilar);
    assert!(c.num_clusters() >= 4, "found {} clusters", c.num_clusters());

    // Quality against planted truth should be strong on this easy input.
    let ari = adjusted_rand_index(&c.labels_with_singletons(), &truth);
    assert!(ari > 0.5, "ARI {ari}");
    let q = modularity(index.graph(), &c.labels_with_singletons());
    assert!(q > 0.3, "modularity {q}");
}

#[test]
fn text_io_preserves_clustering() {
    let g = parscan::graph::generators::rmat(8, 6, 13);
    let path = tmp("text");
    parscan::graph::io::write_edge_list_text(&g, &path).unwrap();
    let reloaded = parscan::graph::io::read_edge_list_text(&path, Some(g.num_vertices())).unwrap();
    std::fs::remove_file(&path).ok();

    let a = ScanIndex::build(g, IndexConfig::default())
        .cluster_with(QueryParams::new(2, 0.4), BorderAssignment::MostSimilar);
    let b = ScanIndex::build(reloaded, IndexConfig::default())
        .cluster_with(QueryParams::new(2, 0.4), BorderAssignment::MostSimilar);
    assert_eq!(a, b);
}

#[test]
fn full_pipeline_with_roles_and_metrics() {
    let (g, _) = parscan::graph::generators::weighted_planted_partition(600, 6, 20.0, 2.0, 77);
    let index = ScanIndex::build(g, IndexConfig::default());
    let c = index.cluster_with(QueryParams::new(4, 0.5), BorderAssignment::MostSimilar);
    let roles = classify_roles(index.graph(), &c);
    let counts = role_counts(&roles);
    assert_eq!(
        counts.cores + counts.borders + counts.hubs + counts.outliers,
        600
    );
    assert_eq!(counts.cores + counts.borders, c.num_clustered());
}

#[test]
fn approximate_pipeline_end_to_end() {
    let (g, truth) = parscan::graph::generators::planted_partition(800, 40, 14.0, 0.5, 5);
    let index = build_approx_index(
        g,
        ApproxConfig {
            method: ApproxMethod::SimHashCosine,
            samples: 256,
            seed: 9,
            degree_heuristic: true,
            ..Default::default()
        },
    );
    let c = index.cluster_with(QueryParams::new(3, 0.5), BorderAssignment::MostSimilar);
    let ari = adjusted_rand_index(&c.labels_with_singletons(), &truth);
    assert!(ari > 0.5, "approximate pipeline ARI {ari}");
}

#[test]
fn dense_mm_index_end_to_end() {
    let (g, _) = parscan::graph::generators::weighted_planted_partition(400, 8, 40.0, 4.0, 3);
    let sims = parscan::dense::compute_similarities_mm(&g, SimilarityMeasure::Cosine);
    let mm_index = ScanIndex::from_similarities(
        g.clone(),
        sims,
        SimilarityMeasure::Cosine,
        Default::default(),
    );
    let exact_index = ScanIndex::build(g, IndexConfig::default());
    // Clustering behavior identical between MM and merge-based (§7.3.2
    // notes "clustering behavior is the same").
    let params = QueryParams::new(3, 0.5);
    let a = mm_index.cluster_with(params, BorderAssignment::MostSimilar);
    let b = exact_index.cluster_with(params, BorderAssignment::MostSimilar);
    assert_eq!(a.core, b.core);
    assert_eq!(a.num_clusters(), b.num_clusters());
}

#[test]
fn index_reuse_across_many_queries() {
    let (g, _) = parscan::graph::generators::planted_partition(500, 5, 12.0, 1.5, 8);
    let index = ScanIndex::build(g, IndexConfig::default());
    let mut prev_clustered = usize::MAX;
    // Monotonicity across the ε sweep at fixed μ: raising ε only shrinks
    // the set of ε-similar edges, so clustered vertices cannot grow.
    for e in 1..=19 {
        let c = index.cluster(QueryParams::new(3, e as f32 * 0.05));
        let clustered = c.num_clustered();
        assert!(clustered <= prev_clustered, "ε sweep not monotone");
        prev_clustered = clustered;
    }
}
