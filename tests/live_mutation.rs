//! Live-mutation gate: differential and concurrent tests for the
//! INSERT/DELETE/APPLY path.
//!
//! Two halves, mirroring the two ways incremental maintenance fails:
//!
//! 1. **Differential** (proptest): every generated mutation stream is
//!    applied both incrementally ([`apply_batch`]) and as a from-scratch
//!    rebuild of the edited edge set (the `test_support` oracle), and
//!    the two indexes must agree — similarities within 1e-12 (in fact
//!    bitwise, since the oracle uses the same full-merge kernel),
//!    identical neighbor/core orders, identical cluster labels across a
//!    (μ, ε) grid. Three graph families: Erdős–Rényi, RMAT, and
//!    weighted planted-partition, ≥ 200 cases total.
//!
//! 2. **Concurrent stress**: reader threads hammer CLUSTER/PROBE while
//!    a writer streams mutation batches through the engine. Every
//!    clustering a reader observes is recorded with the epoch it was
//!    served under and re-derived afterwards from that epoch's index
//!    snapshot — an exact match for every observation proves no reader
//!    ever saw a torn index (state mixed across epochs) and no
//!    invalidated cache entry was ever served (a stale ε-class entry
//!    would disagree with its epoch's fresh computation).

use parscan::core::test_support::{
    assert_clusterings_equivalent, assert_index_equivalent, oracle_config, rebuild_oracle,
};
use parscan::core::{apply_batch, apply_batch_diff, BatchUpdate};
use parscan::graph::generators;
use parscan::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Run one differential case: incremental vs oracle on `graph` + `batch`.
fn check_differential(graph: CsrGraph, batch: BatchUpdate) {
    let measure = SimilarityMeasure::Cosine;
    let oracle = rebuild_oracle(&graph, &batch, measure);
    let base = ScanIndex::build(graph, oracle_config(measure));
    let updated = apply_batch(base, &batch);
    assert_index_equivalent(&updated, &oracle, 1e-12);
    assert_clusterings_equivalent(&updated, &oracle);
}

/// Turn raw generated ops into a batch against `graph`: insertion pairs
/// are used as-is (self-loops and duplicates included — the maintenance
/// path must handle them), deletion picks index into the graph's real
/// edge list so deletions actually delete.
fn make_batch(
    graph: &CsrGraph,
    ins: &[(u32, u32)],
    del_picks: &[usize],
    weight_of: impl Fn(usize) -> f32,
) -> BatchUpdate {
    let n = graph.num_vertices() as u32;
    let edges: Vec<(u32, u32)> = graph.canonical_edges().map(|(u, v, _)| (u, v)).collect();
    BatchUpdate {
        insertions: ins
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (u % n, v % n, weight_of(i)))
            .collect(),
        deletions: del_picks
            .iter()
            .filter(|_| !edges.is_empty())
            .map(|&i| edges[i % edges.len()])
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(70))]

    #[test]
    fn er_mutation_streams_match_full_rebuild(
        (seed, ins, del_picks) in (
            0u64..1 << 48,
            proptest::collection::vec((0u32..80, 0u32..80), 0..12),
            proptest::collection::vec(0usize..1 << 16, 0..10),
        )
    ) {
        let g = generators::erdos_renyi(80, 380, seed);
        let batch = make_batch(&g, &ins, &del_picks, |_| 1.0);
        check_differential(g, batch);
    }

    #[test]
    fn rmat_mutation_streams_match_full_rebuild(
        (seed, ins, del_picks) in (
            0u64..1 << 48,
            proptest::collection::vec((0u32..64, 0u32..64), 0..12),
            proptest::collection::vec(0usize..1 << 16, 0..10),
        )
    ) {
        // RMAT's skewed degrees stress the per-vertex lockstep merge:
        // hubs have long neighbor lists where an off-by-one slot copy
        // would silently corrupt many similarities.
        let g = generators::rmat(6, 8, seed);
        let batch = make_batch(&g, &ins, &del_picks, |_| 1.0);
        check_differential(g, batch);
    }

    #[test]
    fn weighted_mutation_streams_match_full_rebuild(
        (seed, ins, del_picks, wseed) in (
            0u64..1 << 48,
            proptest::collection::vec((0u32..72, 0u32..72), 0..12),
            proptest::collection::vec(0usize..1 << 16, 0..10),
            1u32..40,
        )
    ) {
        let (g, _) = generators::weighted_planted_partition(72, 4, 8.0, 1.5, seed);
        // Distinct positive weights per op, including re-insertions of
        // existing edges (weight replacement).
        let batch = make_batch(&g, &ins, &del_picks, |i| (wseed + i as u32) as f32 / 10.0);
        check_differential(g, batch);
    }
}

// Edge-case properties: each of the documented patch semantics, checked
// against the full-rebuild oracle (not just against our own reading of
// the code).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn empty_batch_is_identity(seed in 0u64..1 << 48) {
        let g = generators::erdos_renyi(60, 250, seed);
        let index = ScanIndex::build(g, oracle_config(SimilarityMeasure::Cosine));
        let sims_ptr = index.similarities().as_slice().as_ptr();
        prop_assert!(apply_batch_diff(&index, &BatchUpdate::default()).is_none());
        let out = apply_batch(index, &BatchUpdate::default());
        // Not merely equal: the very same index, no rebuild happened.
        prop_assert!(std::ptr::eq(sims_ptr, out.similarities().as_slice().as_ptr()));
    }

    #[test]
    fn duplicate_insertions_in_one_batch_first_wins(
        (seed, u, v) in (0u64..1 << 48, 0u32..70, 0u32..70)
    ) {
        prop_assume!(u != v);
        let (g, _) = generators::weighted_planted_partition(70, 4, 7.0, 1.0, seed);
        let batch = BatchUpdate {
            // Same pair three times (once flipped) with different
            // weights: the first occurrence's weight must win.
            insertions: vec![(u, v, 0.9), (v, u, 0.2), (u, v, 0.5)],
            deletions: vec![],
        };
        check_differential(g, batch);
    }

    #[test]
    fn insert_then_delete_of_the_same_edge_keeps_the_insert(
        (seed, u, v) in (0u64..1 << 48, 0u32..70, 0u32..70)
    ) {
        prop_assume!(u != v);
        let (g, _) = generators::weighted_planted_partition(70, 4, 7.0, 1.0, seed);
        let batch = BatchUpdate {
            insertions: vec![(u, v, 0.8)],
            deletions: vec![(v, u)],
        };
        check_differential(g, batch);
    }

    #[test]
    fn self_loop_insertions_are_rejected_as_noops(
        (seed, loops) in (0u64..1 << 48, proptest::collection::vec(0u32..60, 1..6))
    ) {
        let g = generators::erdos_renyi(60, 250, seed);
        let index = ScanIndex::build(g, oracle_config(SimilarityMeasure::Cosine));
        let batch = BatchUpdate {
            insertions: loops.iter().map(|&v| (v, v, 1.0)).collect(),
            deletions: vec![],
        };
        // A batch of only self-loops is effectively empty.
        prop_assert!(apply_batch_diff(&index, &batch).is_none());
    }

    #[test]
    fn weight_replacement_on_existing_edges_matches_rebuild(
        (seed, picks, w) in (
            0u64..1 << 48,
            proptest::collection::vec(0usize..1 << 16, 1..6),
            1u32..30,
        )
    ) {
        let (g, _) = generators::weighted_planted_partition(70, 4, 7.0, 1.0, seed);
        let edges: Vec<(u32, u32)> = g.canonical_edges().map(|(u, v, _)| (u, v)).collect();
        let batch = BatchUpdate {
            insertions: picks
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let (u, v) = edges[p % edges.len()];
                    (u, v, (w + i as u32) as f32 / 10.0)
                })
                .collect(),
            deletions: vec![],
        };
        check_differential(g, batch);
    }
}

/// Concurrent stress: CLUSTER/PROBE readers race a writer streaming
/// mutation batches. Fixed seed — CI gates on this test, so a failure
/// is reproducible, not flaky.
#[test]
fn concurrent_mutation_stress_no_torn_reads_or_stale_cache() {
    const SEED: u64 = 0x5ca2_2021;
    const BATCHES: usize = 24;
    const CHUNK: usize = 40;
    const READERS: usize = 3;

    let (g, _) = generators::planted_partition(500, 5, 10.0, 1.0, SEED);
    let base_edges: Vec<(u32, u32)> = g.canonical_edges().map(|(u, v, _)| (u, v)).collect();
    assert!(base_edges.len() >= BATCHES * CHUNK, "graph too sparse");
    let n = g.num_vertices() as u32;
    let engine = Arc::new(QueryEngine::new(
        Arc::new(ScanIndex::build(g, IndexConfig::default())),
        EngineConfig {
            cache_capacity: 64,
            cache_shards: 4,
            ..Default::default()
        },
    ));

    // Every published epoch's index, recorded by the (single) writer the
    // moment it publishes — the ground truth the readers are checked
    // against afterwards.
    let snapshots: Mutex<Vec<(u64, Arc<ScanIndex>)>> = Mutex::new(vec![(0, engine.index())]);
    let observations: Mutex<Vec<(u64, QueryParams, Arc<Clustering>)>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);
    let params_set = [
        QueryParams::new(2, 0.3),
        QueryParams::new(2, 0.55),
        QueryParams::new(3, 0.4),
        QueryParams::new(5, 0.25),
    ];

    std::thread::scope(|s| {
        s.spawn(|| {
            // Writer: batch i deletes chunk i of the original edges and
            // restores chunk i-1, so every batch both inserts and
            // deletes real (similarity-changing) edges.
            for i in 0..BATCHES {
                let deletions = base_edges[i * CHUNK..(i + 1) * CHUNK].to_vec();
                let insertions = if i == 0 {
                    vec![]
                } else {
                    base_edges[(i - 1) * CHUNK..i * CHUNK]
                        .iter()
                        .map(|&(u, v)| (u, v, 1.0))
                        .collect()
                };
                let batch = BatchUpdate {
                    insertions,
                    deletions,
                };
                let out = engine.apply_update(&batch).expect("endpoints in range");
                assert!(out.changed, "every stress batch changes real edges");
                assert_eq!(out.epoch, i as u64 + 1, "writer is the only mutator");
                snapshots.lock().unwrap().push((out.epoch, engine.index()));
            }
            done.store(true, Ordering::SeqCst);
        });
        for r in 0..READERS {
            let (engine, observations, done, params_set) =
                (&engine, &observations, &done, &params_set);
            s.spawn(move || {
                let mut local = Vec::new();
                let mut i = r; // desynchronize the readers
                while !done.load(Ordering::SeqCst) {
                    let p = params_set[i % params_set.len()];
                    let outcome = engine.cluster(p);
                    local.push((outcome.epoch, p, outcome.clustering));
                    // PROBE traffic rides along (degree-bounded reads on
                    // whatever epoch is current).
                    let _ = engine.probe((i as u32 * 37) % n, p);
                    i += 1;
                }
                observations.lock().unwrap().extend(local);
            });
        }
    });

    // Post-hoc verification: each observation must equal a fresh
    // computation on the index of the epoch it was served under.
    let snapshots = snapshots.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(
        observations.len() >= READERS,
        "readers must have observed results"
    );
    let mut expected: std::collections::HashMap<(u64, u32, u32), Clustering> =
        std::collections::HashMap::new();
    for (epoch, params, seen) in &observations {
        let index = &snapshots
            .iter()
            .find(|(e, _)| e == epoch)
            .unwrap_or_else(|| panic!("epoch {epoch} was never published"))
            .1;
        let key = (*epoch, params.mu, params.epsilon.to_bits());
        let want = expected
            .entry(key)
            .or_insert_with(|| index.cluster_with(*params, BorderAssignment::MostSimilar));
        assert_eq!(
            **seen, *want,
            "torn read or stale cache entry at epoch {epoch}, params {params:?}"
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.epoch, BATCHES as u64);
    assert_eq!(stats.updates_applied, BATCHES as u64);
    assert_eq!(
        stats.cluster_requests,
        stats.cache_hits + stats.cache_misses,
        "serving ledger must reconcile under concurrent mutation"
    );
}
