//! Integration tests for cross-session workflows: index persistence,
//! on-disk graph format interop, the parameter-sweep engine, and the new
//! connectivity/baseline additions — each spanning at least two crates
//! through the public facade.

use parscan::core::sweep::{sweep, sweep_with_best, SweepGrid};
use parscan::metrics::{adjusted_rand_index, modularity, normalized_mutual_information};
use parscan::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("parscan_itest_{name}_{}", std::process::id()));
    p
}

#[test]
fn save_load_query_pipeline() {
    // generator → index → save → load → query → metrics, across 4 crates.
    let (g, truth) = parscan::graph::generators::planted_partition(600, 6, 12.0, 1.0, 31);
    let index = ScanIndex::build(g, IndexConfig::default());
    let path = tmp("pipeline.pscidx");
    index.save(&path).unwrap();

    let loaded = ScanIndex::load(&path).unwrap();
    // Pick (μ, ε) the way the paper does (§7.3.4): best grid modularity —
    // hardcoded parameters are brittle against the generator's similarity
    // scale.
    let grid = SweepGrid::coarse(loaded.graph().max_degree() as u32 + 1);
    let score = |c: &parscan::core::Clustering| {
        if c.num_clusters() == 0 {
            f64::NEG_INFINITY
        } else {
            modularity(loaded.graph(), &c.labels_with_singletons())
        }
    };
    let picked = sweep(&loaded, &grid, score).best_params();
    let a = index.cluster_with(picked, BorderAssignment::MostSimilar);
    let b = loaded.cluster_with(picked, BorderAssignment::MostSimilar);
    assert_eq!(a, b);

    // The clustering from the reloaded index scores identically.
    let qa = modularity(index.graph(), &a.labels_with_singletons());
    let qb = modularity(loaded.graph(), &b.labels_with_singletons());
    assert_eq!(qa, qb);
    let ari = adjusted_rand_index(&b.labels_with_singletons(), &truth);
    assert!(
        ari > 0.3,
        "planted structure should be visible, ARI = {ari}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn approximate_index_round_trips() {
    let g = parscan::graph::generators::rmat(9, 8, 5);
    let index = build_approx_index(
        g,
        ApproxConfig {
            method: ApproxMethod::SimHashCosine,
            samples: 256,
            seed: 7,
            ..Default::default()
        },
    );
    let path = tmp("approx.pscidx");
    index.save(&path).unwrap();
    let loaded = ScanIndex::load(&path).unwrap();
    assert_eq!(
        index.similarities().as_slice(),
        loaded.similarities().as_slice()
    );
    let params = QueryParams::new(3, 0.4);
    assert_eq!(
        index.cluster_with(params, BorderAssignment::MostSimilar),
        loaded.cluster_with(params, BorderAssignment::MostSimilar)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn format_conversion_preserves_clusterings() {
    // text ⇄ metis ⇄ binary all describe the same graph, hence the same
    // SCAN output.
    let (g, _) = parscan::graph::generators::planted_partition(300, 3, 9.0, 1.0, 13);
    let p_text = tmp("conv.txt");
    let p_metis = tmp("conv.graph");
    let p_bin = tmp("conv.bin");
    parscan::graph::io::write_edge_list_text(&g, &p_text).unwrap();
    parscan::graph::metis::write_metis(&g, &p_metis).unwrap();
    parscan::graph::io::write_binary(&g, &p_bin).unwrap();

    let from_text = parscan::graph::io::read_edge_list_text(&p_text, Some(300)).unwrap();
    let from_metis = parscan::graph::metis::read_metis(&p_metis).unwrap();
    let from_bin = parscan::graph::io::read_binary(&p_bin).unwrap();
    assert_eq!(from_text, from_metis);
    assert_eq!(from_text, from_bin);

    let params = QueryParams::new(3, 0.5);
    let reference = ScanIndex::build(g, IndexConfig::default())
        .cluster_with(params, BorderAssignment::MostSimilar);
    for h in [from_text, from_metis, from_bin] {
        let c = ScanIndex::build(h, IndexConfig::default())
            .cluster_with(params, BorderAssignment::MostSimilar);
        assert_eq!(c, reference);
    }
    for p in [p_text, p_metis, p_bin] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sweep_engine_beats_fixed_parameters_on_planted_graphs() {
    let (g, truth) = parscan::graph::generators::planted_partition(800, 8, 14.0, 1.0, 5);
    let index = ScanIndex::build(g, IndexConfig::default());
    let grid = SweepGrid::coarse(index.graph().max_degree() as u32 + 1);
    let (result, best) = sweep_with_best(&index, &grid, |c| {
        if c.num_clusters() == 0 {
            f64::NEG_INFINITY
        } else {
            modularity(index.graph(), &c.labels_with_singletons())
        }
    });
    assert!(result.best_score() > 0.5, "got {}", result.best_score());
    // The modularity-maximizing clustering recovers the planted partition
    // well by both external measures.
    let labels = best.labels_with_singletons();
    assert!(adjusted_rand_index(&labels, &truth) > 0.5);
    assert!(normalized_mutual_information(&labels, &truth) > 0.5);
}

#[test]
fn connectivity_backends_agree_through_facade() {
    let g = parscan::graph::generators::rmat(10, 8, 3);
    let index = ScanIndex::build(g, IndexConfig::default());
    for (mu, eps) in [(2u32, 0.3f32), (4, 0.5), (8, 0.2)] {
        let params = QueryParams::new(mu, eps);
        let uf = index.cluster_with_opts(
            params,
            QueryOptions {
                border: BorderAssignment::MostSimilar,
                connectivity: CoreConnectivity::UnionFind,
            },
        );
        let mat = index.cluster_with_opts(
            params,
            QueryOptions {
                border: BorderAssignment::MostSimilar,
                connectivity: CoreConnectivity::Materialized,
            },
        );
        assert_eq!(uf, mat, "(μ,ε)=({mu},{eps})");
    }
}

#[test]
fn scanxp_baseline_matches_index_cores() {
    let (g, _) = parscan::graph::generators::planted_partition(400, 4, 10.0, 1.5, 2);
    let index = ScanIndex::build(g.clone(), IndexConfig::default());
    for (mu, eps) in [(2u32, 0.4f32), (5, 0.6)] {
        let xp = parscan::baselines::scanxp_parallel(&g, SimilarityMeasure::Cosine, mu, eps);
        let idx = index.cluster(QueryParams::new(mu, eps));
        assert_eq!(xp.core, idx.core, "(μ,ε)=({mu},{eps})");
        for v in 0..g.num_vertices() {
            if xp.core[v] {
                assert_eq!(xp.labels[v], idx.labels[v]);
            }
        }
    }
}

#[test]
fn dynamic_update_then_persist_round_trip() {
    use parscan::core::dynamic::{apply_batch, BatchUpdate};
    let g = parscan::graph::generators::erdos_renyi(300, 1800, 21);
    let index = ScanIndex::build(
        g,
        parscan::core::IndexConfig {
            exact: parscan::core::ExactStrategy::FullMerge,
            ..Default::default()
        },
    );
    let updated = apply_batch(index, &BatchUpdate::insert(&[(0, 299), (1, 250), (2, 200)]));
    let path = tmp("dynamic.pscidx");
    updated.save(&path).unwrap();
    let loaded = ScanIndex::load(&path).unwrap();
    assert_eq!(loaded.graph(), updated.graph());
    let params = QueryParams::new(3, 0.4);
    assert_eq!(
        loaded.cluster_with(params, BorderAssignment::MostSimilar),
        updated.cluster_with(params, BorderAssignment::MostSimilar)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn fork_join_sort_agrees_with_flat_sort_on_graph_data() {
    // Sort the edge similarity pairs with both substrate sorts.
    let g = parscan::graph::generators::rmat(9, 8, 11);
    let sims = parscan::core::similarity_exact::compute_merge_based(&g, SimilarityMeasure::Cosine);
    let mut a: Vec<(u32, u32)> = (0..g.num_slots())
        .map(|s| (sims.slot(s).to_bits(), s as u32))
        .collect();
    let mut b = a.clone();
    parscan::parallel::quicksort::par_quicksort_by(&mut a, |x, y| x.cmp(y));
    parscan::parallel::sort::par_sort_unstable_by(&mut b, |x, y| x.cmp(y));
    assert_eq!(a, b);
}

#[test]
fn torn_temp_files_never_shadow_the_durable_store_generation() {
    // Fabricate the on-disk states a kill mid-`atomic_write` can leave
    // behind — temp files truncated at arbitrary points or bit-flipped
    // by a dying disk — and prove a cold open ignores every one of them
    // and serves the last committed generation.
    let dir = tmp("torn_store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (g, _) = parscan::graph::generators::planted_partition(150, 4, 9.0, 1.0, 21);
    let index = ScanIndex::build(g, IndexConfig::default());
    {
        let store = IndexStore::open(&dir).unwrap();
        store.save("g", &index, true, 64).unwrap();
    }
    let manifest_bytes = std::fs::read(dir.join("manifest.psm")).unwrap();
    let snapshot_bytes = std::fs::read(dir.join("snapshots").join("g.pscidx")).unwrap();

    // Temp-file debris in both directories, at every interesting tear
    // point: empty (killed after create), a prefix (killed or torn
    // mid-write), complete-but-unrenamed (killed between fsync and
    // rename), and complete-but-corrupt (torn sector).
    let pid = std::process::id();
    let mut flipped = manifest_bytes.clone();
    flipped[manifest_bytes.len() / 2] ^= 0x40;
    let manifest_debris = dir.join(format!(".manifest.psm.tmp.{pid}"));
    let snapshot_debris = dir.join("snapshots").join(format!(".g.pscidx.tmp.{pid}"));
    for (variant, bytes) in [
        ("empty", Vec::new()),
        (
            "prefix",
            manifest_bytes[..manifest_bytes.len() / 2].to_vec(),
        ),
        ("complete", manifest_bytes.clone()),
        ("corrupt", flipped.clone()),
    ] {
        std::fs::write(&manifest_debris, &bytes).unwrap();
        std::fs::write(
            &snapshot_debris,
            &snapshot_bytes[..bytes.len().min(snapshot_bytes.len())],
        )
        .unwrap();

        let store = IndexStore::open(&dir)
            .unwrap_or_else(|e| panic!("open must ignore {variant} temp debris: {e}"));
        let entries = store.entries();
        assert_eq!(entries.len(), 1, "{variant}: generation intact");
        assert_eq!(entries[0].name, "g");
        let (reloaded, _) = store.load("g").unwrap();
        assert_eq!(
            reloaded.cluster_with(QueryParams::new(3, 0.5), BorderAssignment::MostSimilar),
            index.cluster_with(QueryParams::new(3, 0.5), BorderAssignment::MostSimilar),
            "{variant}: snapshot answers identically"
        );
    }

    // A torn write that *did* reach the real manifest (a partial rename
    // on a non-atomic filesystem, or sector corruption) is detected —
    // the store refuses to open rather than serving garbage.
    std::fs::write(dir.join("manifest.psm"), &flipped).unwrap();
    assert!(
        IndexStore::open(&dir).is_err(),
        "a corrupt root pointer must be detected, not served"
    );
    std::fs::write(
        dir.join("manifest.psm"),
        &manifest_bytes[..manifest_bytes.len() - 7],
    )
    .unwrap();
    assert!(
        IndexStore::open(&dir).is_err(),
        "a truncated root pointer must be detected, not served"
    );

    // Restoring the intact manifest restores service.
    std::fs::write(dir.join("manifest.psm"), &manifest_bytes).unwrap();
    IndexStore::open(&dir).unwrap().load("g").unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
