//! Property-based tests (proptest) over randomly generated graphs and
//! parameters: similarity-strategy agreement, SCAN-definition invariants
//! of the index's clustering, and approximation concentration.

use parscan::baselines::original_scan;
use parscan::core::similarity_exact::{
    compute_full_merge, compute_hash_based, compute_merge_based, compute_merge_based_atomic,
};
use parscan::prelude::*;
use proptest::prelude::*;

/// Random simple graph: up to `max_n` vertices, multi-edge/self-loop
/// inputs allowed (the builder cleans them).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| parscan::graph::from_edges(n as usize, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn similarity_strategies_agree(g in arb_graph(60, 300)) {
        for measure in [SimilarityMeasure::Cosine, SimilarityMeasure::Jaccard, SimilarityMeasure::Dice] {
            let full = compute_full_merge(&g, measure);
            let merge = compute_merge_based(&g, measure);
            let hash = compute_hash_based(&g, measure);
            let atomic = compute_merge_based_atomic(&g, measure);
            prop_assert_eq!(full.as_slice(), merge.as_slice());
            prop_assert_eq!(full.as_slice(), hash.as_slice());
            prop_assert_eq!(full.as_slice(), atomic.as_slice());
        }
    }

    #[test]
    fn similarities_are_valid_scores(g in arb_graph(60, 300)) {
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        for (u, v, slot) in g.canonical_edges() {
            let s = sims.slot(slot);
            prop_assert!(s > 0.0 && s <= 1.0, "σ({},{}) = {}", u, v, s);
            let twin = g.slot_of(v, u).unwrap();
            prop_assert_eq!(sims.slot(slot), sims.slot(twin));
        }
    }

    #[test]
    fn index_clustering_matches_original_scan(
        g in arb_graph(50, 250),
        mu in 2u32..6,
        eps_pct in 1u32..100,
    ) {
        let eps = eps_pct as f32 / 100.0;
        let want = original_scan(&g, SimilarityMeasure::Cosine, mu, eps);
        let index = ScanIndex::build(g.clone(), IndexConfig::default());
        let got = index.cluster(QueryParams::new(mu, eps));
        prop_assert_eq!(&want.core, &got.core);
        for v in 0..want.labels.len() {
            if want.core[v] {
                prop_assert_eq!(want.labels[v], got.labels[v]);
            }
            prop_assert_eq!(
                want.labels[v] == UNCLUSTERED,
                got.labels[v] == UNCLUSTERED
            );
        }
    }

    #[test]
    fn scan_clustering_defining_properties(
        g in arb_graph(50, 250),
        mu in 2u32..6,
        eps_pct in 1u32..100,
    ) {
        let eps = eps_pct as f32 / 100.0;
        let index = ScanIndex::build(g.clone(), IndexConfig::default());
        let c = index.cluster(QueryParams::new(mu, eps));
        let no = index.neighbor_order();
        for v in 0..g.num_vertices() as u32 {
            let (nbrs, _) = no.epsilon_prefix(&g, v, eps);
            // Core definition over closed ε-neighborhood.
            prop_assert_eq!(c.is_core(v), nbrs.len() + 1 >= mu as usize);
            if c.is_core(v) {
                for &u in nbrs {
                    if c.is_core(u) {
                        prop_assert_eq!(c.labels[v as usize], c.labels[u as usize]);
                    }
                }
            }
            if !c.is_core(v) && c.is_clustered(v) {
                prop_assert!(nbrs.iter().any(|&u| c.is_core(u)
                    && c.labels[u as usize] == c.labels[v as usize]));
            }
            if !c.is_clustered(v) {
                prop_assert!(nbrs.iter().all(|&u| !c.is_core(u)));
            }
        }
    }

    #[test]
    fn metrics_identities(labels in proptest::collection::vec(0u32..5, 1..100)) {
        // ARI and NMI of a partition with itself are 1.
        let ari = parscan::metrics::adjusted_rand_index(&labels, &labels);
        prop_assert!((ari - 1.0).abs() < 1e-9);
        let nmi = parscan::metrics::normalized_mutual_information(&labels, &labels);
        prop_assert!((nmi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_invariant_under_label_permutation(
        (labels, other) in (2usize..100).prop_flat_map(|n| (
            proptest::collection::vec(0u32..6, n),
            proptest::collection::vec(0u32..6, n),
        )),
    ) {
        // Renaming cluster ids changes neither ARI nor NMI.
        let renamed: Vec<u32> = labels.iter().map(|&l| 7 * l + 13).collect();
        let ari_a = parscan::metrics::adjusted_rand_index(&labels, &other);
        let ari_b = parscan::metrics::adjusted_rand_index(&renamed, &other);
        prop_assert!((ari_a - ari_b).abs() < 1e-9);
        let nmi_a = parscan::metrics::normalized_mutual_information(&labels, &other);
        let nmi_b = parscan::metrics::normalized_mutual_information(&renamed, &other);
        prop_assert!((nmi_a - nmi_b).abs() < 1e-9);
    }

    #[test]
    fn connected_components_match_union_find(
        n in 1usize..80,
        raw_edges in proptest::collection::vec((0u32..80, 0u32..80), 0..200),
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let lp = parscan::parallel::connectivity::connected_components(n, &edges);
        let uf = parscan::parallel::union_find::ConcurrentUnionFind::new(n);
        for &(u, v) in &edges {
            uf.union(u, v);
        }
        prop_assert_eq!(lp, uf.components());
    }

    #[test]
    fn modularity_of_single_cluster_is_zero_or_less(g in arb_graph(40, 150)) {
        prop_assume!(g.num_edges() > 0);
        let labels = vec![0u32; g.num_vertices()];
        let q = parscan::metrics::modularity(&g, &labels);
        prop_assert!(q.abs() < 1e-9);
    }
}

proptest! {
    // I/O round trips: fewer cases, they hit the filesystem.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn index_persistence_round_trips(g in arb_graph(40, 200), case in 0u64..u64::MAX) {
        let index = ScanIndex::build(g, IndexConfig::default());
        let mut path = std::env::temp_dir();
        path.push(format!("parscan_prop_persist_{}_{case}.pscidx", std::process::id()));
        index.save(&path).unwrap();
        let loaded = ScanIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.graph(), index.graph());
        prop_assert_eq!(loaded.similarities().as_slice(), index.similarities().as_slice());
        let params = QueryParams::new(2, 0.5);
        prop_assert_eq!(
            loaded.cluster_with(params, BorderAssignment::MostSimilar),
            index.cluster_with(params, BorderAssignment::MostSimilar)
        );
    }

    #[test]
    fn metis_round_trips(g in arb_graph(40, 200), case in 0u64..u64::MAX) {
        let mut path = std::env::temp_dir();
        path.push(format!("parscan_prop_metis_{}_{case}.graph", std::process::id()));
        parscan::graph::metis::write_metis(&g, &path).unwrap();
        let h = parscan::graph::metis::read_metis(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(g, h);
    }
}

proptest! {
    // Approximation tests are more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn approx_with_huge_k_equals_exact_via_heuristic(g in arb_graph(40, 200)) {
        // Degree threshold k exceeds every degree, so the heuristic
        // routes every edge through the exact path.
        let config = ApproxConfig {
            method: ApproxMethod::SimHashCosine,
            samples: 4096,
            seed: 1,
            degree_heuristic: true,
            ..Default::default()
        };
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let approx = parscan::approx::approx_index::approx_similarities(&g, &config);
        prop_assert_eq!(exact.as_slice(), approx.as_slice());
    }

    #[test]
    fn simhash_estimates_concentrate(seed in 0u64..1000) {
        let g = parscan::graph::generators::erdos_renyi(40, 200, seed);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let sketches = parscan::approx::SimHashSketches::build(&g, 2048, seed, |_| true);
        for (u, v, slot) in g.canonical_edges() {
            let err = (sketches.estimate(u, v) - exact.slot(slot)).abs();
            // k = 2048 gives σ ≈ 0.01 on the angle estimate; 0.15 is a
            // loose many-sigma bound that still catches broken sketching
            // without flaking on tail seeds.
            prop_assert!(err < 0.15, "edge ({},{}) err {}", u, v, err);
        }
    }
}
