//! Protocol-torture tests for the reactor transport: adversarial byte
//! streams that a thread-per-connection server tolerates by accident
//! must also be survived by the state-machine framing — split and merged
//! TCP frames, oversized lines, slowloris byte-at-a-time writes, and
//! abrupt mid-frame disconnects. The properties under test: the server
//! never panics, never leaks a connection slot, and never misattributes
//! a response (every session reads exactly the answers to its own
//! requests, in request order).

use parscan::prelude::*;
use parscan::server::{
    serve_with_config, GraphRegistry, RegistryConfig, ServeConfig, ServerHandle,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request corpus for randomized streams, paired with the marker its
/// response must carry. Indexed by proptest-generated `0..REQUESTS.len()`.
const REQUESTS: &[(&str, &str)] = &[
    ("PING", r#""op":"pong""#),
    ("CLUSTER 3 0.5", r#""op":"cluster""#),
    ("CLUSTER 2 0.35", r#""op":"cluster""#),
    ("STATS", r#""op":"stats""#),
    ("EXPLODE 9 9", r#""op":"error""#),
];

fn torture_server(config: ServeConfig) -> ServerHandle {
    let registry = Arc::new(GraphRegistry::new("primary", RegistryConfig::default()));
    let (g, _) = parscan::graph::generators::planted_partition(300, 4, 9.0, 1.0, 11);
    registry
        .install("primary", ScanIndex::build(g, IndexConfig::default()))
        .unwrap();
    serve_with_config(registry, "127.0.0.1:0", config).expect("bind torture server")
}

fn roundtrip(session: &mut BufReader<TcpStream>, line: &str) -> String {
    session
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    read_response(session)
}

fn read_response(session: &mut BufReader<TcpStream>) -> String {
    let mut response = String::new();
    session.read_line(&mut response).expect("read response");
    assert!(
        response.ends_with('\n'),
        "connection closed mid-response: {response:?}"
    );
    response
}

/// The reactor's live-connection gauge, read over a throwaway session
/// (which itself counts while connected).
fn reactor_connections(addr: SocketAddr) -> u64 {
    let mut session = BufReader::new(TcpStream::connect(addr).expect("connect for stats"));
    session
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let stats = roundtrip(&mut session, "STATS");
    let tail = stats
        .split(r#""reactor":{"connections":"#)
        .nth(1)
        .unwrap_or_else(|| panic!("no reactor block in {stats}"));
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("connections gauge")
}

/// Wait for every abandoned session to be reaped: the gauge must come
/// back to exactly 1 — the polling connection itself.
fn assert_all_slots_reclaimed(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = u64::MAX;
    while Instant::now() < deadline {
        last = reactor_connections(addr);
        if last == 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("connection slots leaked: gauge stuck at {last} (expected 1)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Requests delivered across arbitrary TCP frame boundaries — one
    /// byte at a time, several requests merged into one segment, and
    /// everything in between — produce exactly one response per request,
    /// in request order, each of the right kind.
    #[test]
    fn split_and_merged_frames_never_misattribute_responses(
        picks in proptest::collection::vec(0usize..REQUESTS.len(), 1..=18),
        cuts in proptest::collection::vec(1usize..48, 1..=12),
    ) {
        let server = torture_server(ServeConfig::default());
        let mut session = BufReader::new(TcpStream::connect(server.addr()).expect("connect"));
        session.get_ref().set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        session.get_ref().set_nodelay(true).unwrap();

        let wire: Vec<u8> = picks
            .iter()
            .flat_map(|&i| format!("{}\n", REQUESTS[i].0).into_bytes())
            .collect();

        // Re-chunk the byte stream at generated boundaries, cycling the
        // cut list; a pause every few chunks forces genuinely separate
        // segments instead of kernel-side coalescing.
        let mut sent = 0;
        for (k, chunk) in cuts.iter().cycle().scan(0usize, |pos, &len| {
            if *pos >= wire.len() {
                return None;
            }
            let end = (*pos + len).min(wire.len());
            let piece = &wire[*pos..end];
            *pos = end;
            Some(piece)
        }).enumerate() {
            session.get_mut().write_all(chunk).expect("write chunk");
            sent += chunk.len();
            if k % 3 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        prop_assert_eq!(sent, wire.len());

        for (n, &i) in picks.iter().enumerate() {
            let (request, marker) = REQUESTS[i];
            let response = read_response(&mut session);
            prop_assert!(
                response.contains(marker),
                "response {n} to {request:?} missing {marker}: {response}"
            );
            if request == "PING" {
                prop_assert_eq!(response.trim_end(), r#"{"ok":true,"op":"pong"}"#);
            }
        }
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A line past the 64 KiB cap gets the typed error (even when the
    /// overlong line is still unterminated), the connection is drained
    /// and closed instead of wedged, and the server stays healthy.
    #[test]
    fn oversized_lines_error_then_close_without_wedging(
        excess in 1usize..16_000,
        cut in 512usize..8_192,
    ) {
        let server = torture_server(ServeConfig::default());
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut session = BufReader::new(stream);

        // The connection works before the abuse...
        prop_assert!(roundtrip(&mut session, "PING").contains(r#""op":"pong""#));

        // ...then receives one monster line, chunked, with requests
        // pipelined behind it that must all be discarded by the drain.
        let monster = vec![b'x'; 64 * 1024 + excess];
        for chunk in monster.chunks(cut) {
            // Best effort: the server may error-and-drain before the
            // tail of the line is even written.
            if session.get_mut().write_all(chunk).is_err() {
                break;
            }
        }
        let _ = session.get_mut().write_all(b"\nPING\nPING\n");

        let response = read_response(&mut session);
        prop_assert!(
            response.contains(r#""ok":false"#) && response.contains("exceeds"),
            "expected oversize error, got {response}"
        );
        // Draining ends in close, never in answers to the poisoned tail.
        let mut rest = String::new();
        let n = session.read_line(&mut rest).unwrap_or(0);
        prop_assert_eq!(n, 0, "connection yielded data after drain: {}", rest);

        // The server itself is unharmed.
        let mut fresh = BufReader::new(TcpStream::connect(server.addr()).expect("reconnect"));
        prop_assert!(roundtrip(&mut fresh, "PING").contains(r#""op":"pong""#));
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Connections that vanish mid-frame — after a partial line, after
    /// random garbage, or after complete unread requests — must all be
    /// reaped: the live-connection gauge returns to baseline and the
    /// server keeps answering.
    #[test]
    fn abrupt_mid_frame_disconnects_leak_no_slots(
        prefixes in proptest::collection::vec(0usize..REQUESTS.len(), 0..4),
        garbage in proptest::collection::vec(1u8..=255, 0..180),
        half_close in 0u8..2,
    ) {
        // One shared server across all cases would hide per-case leaks
        // behind earlier reaping; a fresh one keeps the ledger exact.
        let server = torture_server(ServeConfig::default());

        // Complete requests (responses never read), then a torn frame.
        let mut victim = TcpStream::connect(server.addr()).expect("connect victim");
        victim.set_nodelay(true).unwrap();
        for &i in &prefixes {
            let _ = victim.write_all(format!("{}\n", REQUESTS[i].0).as_bytes());
        }
        let _ = victim.write_all(&garbage); // no trailing newline: mid-frame
        if half_close == 1 {
            let _ = victim.shutdown(std::net::Shutdown::Write);
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(victim);

        assert_all_slots_reclaimed(server.addr());
        let mut fresh = BufReader::new(TcpStream::connect(server.addr()).expect("reconnect"));
        prop_assert!(roundtrip(&mut fresh, "PING").contains(r#""op":"pong""#));
        server.shutdown();
    }
}

/// Slowloris: sessions trickling one byte at a time must not stall the
/// reactor — concurrent well-behaved traffic stays fast, and when the
/// slow writers finally finish their lines they get their own answers.
#[test]
fn slowloris_writers_do_not_stall_other_sessions() {
    let server = torture_server(ServeConfig::default());
    let addr = server.addr();

    let slow_handles: Vec<_> = (0..8)
        .map(|k| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect slow");
                stream.set_nodelay(true).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut session = BufReader::new(stream);
                let line = if k % 2 == 0 {
                    "CLUSTER 3 0.45\n"
                } else {
                    "PING\n"
                };
                for byte in line.as_bytes() {
                    session
                        .get_mut()
                        .write_all(std::slice::from_ref(byte))
                        .expect("trickle byte");
                    std::thread::sleep(Duration::from_millis(10));
                }
                let response = read_response(&mut session);
                let marker = if k % 2 == 0 {
                    r#""op":"cluster""#
                } else {
                    r#""op":"pong""#
                };
                assert!(
                    response.contains(marker),
                    "slow session {k} got someone else's answer: {response}"
                );
            })
        })
        .collect();

    // While the trickle is in flight, a fast session must see prompt,
    // correct answers: slow peers hold no worker and no reactor time.
    let mut fast = BufReader::new(TcpStream::connect(addr).expect("connect fast"));
    fast.get_ref()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..40 {
        let started = Instant::now();
        let response = roundtrip(&mut fast, "PING");
        assert_eq!(response.trim_end(), r#"{"ok":true,"op":"pong"}"#);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fast session starved behind slowloris writers"
        );
    }

    for handle in slow_handles {
        handle.join().expect("slow session panicked");
    }
    server.shutdown();
}
