//! Stress tests for the two parallel substrates — the flat chunk-claiming
//! pool and the nested work-stealing fork-join scheduler — including their
//! coexistence, which production code exercises whenever a fork-join
//! algorithm runs in a process that also uses the flat primitives.

use parscan::parallel::fork_join::join;
use parscan::parallel::primitives::{par_for, reduce};
use parscan::parallel::quicksort::par_quicksort;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn flat_pool_and_fork_join_interleave() {
    // Alternate work between the two schedulers many times; both must
    // produce exact results regardless of which worker sets are warm.
    for round in 0..20u64 {
        let n = 10_000 + round as usize * 100;
        let flat_sum = reduce(n, 1024, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(flat_sum, (n as u64 * (n as u64 - 1)) / 2);

        fn fj_sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 512 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| fj_sum(lo, mid), || fj_sum(mid, hi));
            a + b
        }
        assert_eq!(fj_sum(0, n as u64), flat_sum);
    }
}

#[test]
fn fork_join_called_from_flat_pool_worker() {
    // A flat-parallel chunk body invoking `join` takes the external path
    // (the flat worker is not a fork-join worker): the work is injected
    // into the fork-join scheduler and completed. This must not deadlock
    // even with every flat worker doing it simultaneously.
    let total = AtomicU64::new(0);
    par_for(64, 1, |i| {
        let (a, b) = join(move || i as u64 * 2, move || i as u64 + 1);
        total.fetch_add(a + b, Ordering::Relaxed);
    });
    let want: u64 = (0..64u64).map(|i| 2 * i + i + 1).sum();
    assert_eq!(total.load(Ordering::Relaxed), want);
}

#[test]
fn flat_primitives_called_inside_fork_join_workers() {
    // The converse nesting: fork-join tasks calling flat primitives. The
    // flat pool treats fork-join workers as external submitters, so this
    // composes (serialized on the flat pool's submit lock).
    fn recurse(depth: u32) -> u64 {
        if depth == 0 {
            return reduce(1000, 128, 0u64, |i| i as u64, |a, b| a + b);
        }
        let (a, b) = join(|| recurse(depth - 1), || recurse(depth - 1));
        a + b
    }
    let leaf = 999 * 1000 / 2;
    assert_eq!(recurse(4), 16 * leaf);
}

#[test]
fn quicksort_stress_many_shapes() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    for len in [0usize, 1, 2, 2_047, 2_048, 2_049, 50_000] {
        // Random, sorted, reversed, and saw-tooth inputs at boundary sizes
        // around the sequential cutoff.
        let random: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        let sorted: Vec<u64> = (0..len as u64).collect();
        let reversed: Vec<u64> = (0..len as u64).rev().collect();
        let saw: Vec<u64> = (0..len as u64).map(|i| i % 17).collect();
        for data in [random, sorted, reversed, saw] {
            let mut got = data.clone();
            let mut want = data;
            par_quicksort(&mut got);
            want.sort_unstable();
            assert_eq!(got, want, "len {len}");
        }
    }
}

#[test]
fn deep_unbalanced_fork_join_trees() {
    // A left-leaning spine: each level pushes exactly one stealable task.
    // Exercises the reclaim path heavily and the helper loop occasionally.
    fn spine(depth: u64) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join(|| spine(depth - 1), || depth);
        a + b
    }
    // 1 + Σ 1..=512
    assert_eq!(spine(512), 1 + 512 * 513 / 2);
}

#[test]
fn concurrent_queries_against_shared_index() {
    // Many OS threads querying one index while the flat pool serves each
    // query's internal parallelism — the "analyst dashboard" workload.
    use parscan::prelude::*;
    let (g, _) = parscan::graph::generators::planted_partition(2_000, 10, 12.0, 1.0, 13);
    let index = ScanIndex::build(g, IndexConfig::default());
    let reference: Vec<Clustering> = (2..6u32)
        .map(|mu| index.cluster_with(QueryParams::new(mu, 0.3), BorderAssignment::MostSimilar))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for (i, mu) in (2..6u32).enumerate() {
                    let c = index
                        .cluster_with(QueryParams::new(mu, 0.3), BorderAssignment::MostSimilar);
                    assert_eq!(c, reference[i]);
                }
            });
        }
    });
}
