//! Integration tests for the serving subsystem: thread-safety contracts,
//! concurrent TCP clients receiving results identical to direct library
//! calls, and result-cache hit/eviction behavior — all through the
//! public facade.

use parscan::prelude::*;
use parscan::server::{serve_engine, EngineStats, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

// The serving layer's entire design rests on sharing one index and one
// engine across threads; lock these bounds in at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScanIndex>();
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<GraphRegistry>();
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<Arc<Clustering>>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<Request>();
    assert_send_sync::<Response>();
};

fn build_engine(cache_capacity: usize) -> (Arc<ScanIndex>, Arc<QueryEngine>) {
    let (g, _) = parscan::graph::generators::planted_partition(400, 5, 10.0, 1.2, 99);
    let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&index),
        EngineConfig {
            cache_capacity,
            ..Default::default()
        },
    ));
    (index, engine)
}

/// Extract a JSON integer array field like `"labels":[0,-1,2]`.
fn json_int_array(response: &str, key: &str) -> Vec<i64> {
    let needle = format!("\"{key}\":[");
    let start = response
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {response}"))
        + needle.len();
    let end = start
        + response[start..]
            .find(']')
            .unwrap_or_else(|| panic!("unterminated {key:?} array"));
    let body = &response[start..end];
    if body.is_empty() {
        return Vec::new();
    }
    body.split(',')
        .map(|t| t.parse::<i64>().expect("integer array element"))
        .collect()
}

/// The wire encoding of a clustering's labels: `UNCLUSTERED` as -1.
fn wire_labels(c: &Clustering) -> Vec<i64> {
    c.labels
        .iter()
        .map(|&l| if l == UNCLUSTERED { -1 } else { l as i64 })
        .collect()
}

fn wire_cores(c: &Clustering) -> Vec<i64> {
    c.core
        .iter()
        .enumerate()
        .filter_map(|(v, &is_core)| is_core.then_some(v as i64))
        .collect()
}

#[test]
fn concurrent_clients_match_direct_queries() {
    let (index, engine) = build_engine(64);
    let server = serve_engine(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Each client thread issues every (μ, ε) point, interleaving with the
    // other clients; some answers are cold, most are cache hits. Every
    // response must equal the direct library call exactly.
    const CLIENTS: usize = 4;
    const POINTS: &[(u32, f32)] = &[(2, 0.25), (3, 0.4), (3, 0.55), (4, 0.35), (5, 0.5)];

    let expected: Vec<(Vec<i64>, Vec<i64>)> = POINTS
        .iter()
        .map(|&(mu, eps)| {
            let c = index.cluster_with(QueryParams::new(mu, eps), BorderAssignment::MostSimilar);
            (wire_labels(&c), wire_cores(&c))
        })
        .collect();

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let expected = &expected;
            s.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for round in 0..2 {
                    for k in 0..POINTS.len() {
                        // Stagger request order per client.
                        let i = (k + client + round) % POINTS.len();
                        let (mu, eps) = POINTS[i];
                        stream
                            .write_all(format!("CLUSTER {mu} {eps} FULL\n").as_bytes())
                            .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        assert!(line.contains("\"ok\":true"), "{line}");
                        assert_eq!(
                            json_int_array(&line, "labels"),
                            expected[i].0,
                            "labels diverge at point {i} (client {client})"
                        );
                        assert_eq!(
                            json_int_array(&line, "cores"),
                            expected[i].1,
                            "cores diverge at point {i} (client {client})"
                        );
                    }
                }
                stream.write_all(b"QUIT\n").unwrap();
            });
        }
    });

    // All clients × rounds × points answered; each distinct point
    // computed at most a handful of times (concurrent cold misses may
    // race, but the steady state is hits).
    let stats = engine.stats();
    assert_eq!(stats.cluster_requests, (CLIENTS * 2 * POINTS.len()) as u64);
    assert!(
        stats.cache_hits > stats.cache_misses,
        "hot serving must be hit-dominated: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn batch_over_tcp_matches_direct_queries() {
    let (index, engine) = build_engine(64);
    let server = serve_engine(engine, "127.0.0.1:0").expect("bind");

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"BATCH CLUSTER 3 0.4 FULL ; CLUSTER 3 0.4 FULL ; CLUSTER 2 0.3 FULL\n")
        .unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("\"op\":\"batch\""), "{line}");

    let want_a = index.cluster_with(QueryParams::new(3, 0.4), BorderAssignment::MostSimilar);
    let want_b = index.cluster_with(QueryParams::new(2, 0.3), BorderAssignment::MostSimilar);
    // Three results; the first two identical, all matching direct calls.
    let results: Vec<&str> = line.split("\"op\":\"cluster\"").skip(1).collect();
    assert_eq!(results.len(), 3);
    assert_eq!(json_int_array(results[0], "labels"), wire_labels(&want_a));
    assert_eq!(json_int_array(results[1], "labels"), wire_labels(&want_a));
    assert_eq!(json_int_array(results[2], "labels"), wire_labels(&want_b));
    stream.write_all(b"QUIT\n").unwrap();
    server.shutdown();
}

#[test]
fn cache_hits_share_one_allocation() {
    let (_, engine) = build_engine(32);
    let p = QueryParams::new(3, 0.45);
    let cold = engine.cluster(p);
    assert!(!cold.cached);
    for _ in 0..5 {
        let hot = engine.cluster(p);
        assert!(hot.cached);
        assert!(Arc::ptr_eq(&cold.clustering, &hot.clustering));
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 5);
    assert!(stats.hit_rate() > 0.8);
}

#[test]
fn equivalent_epsilons_are_cache_hits() {
    let (index, engine) = build_engine(32);
    let cold = engine.cluster(QueryParams::new(3, 0.5));
    let (_, snapped) = engine.snap_epsilon(0.5);
    // The snapped representative and the raw ε share one cache entry…
    let hot = engine.cluster(QueryParams::new(3, snapped));
    assert!(hot.cached, "snapped ε must hit the raw ε's entry");
    // …and legitimately so: the index returns the identical clustering.
    let direct_raw = index.cluster_with(QueryParams::new(3, 0.5), BorderAssignment::MostSimilar);
    let direct_snapped =
        index.cluster_with(QueryParams::new(3, snapped), BorderAssignment::MostSimilar);
    assert_eq!(direct_raw, direct_snapped);
    assert_eq!(*cold.clustering, direct_raw);
}

#[test]
fn eviction_under_capacity_pressure_stays_correct() {
    let (index, engine) = build_engine(2);
    let points: Vec<QueryParams> = (1..=9)
        .map(|i| QueryParams::new(2, i as f32 / 10.0))
        .collect();
    // Fill far past capacity, then re-query everything.
    for &p in &points {
        engine.cluster(p);
    }
    for &p in &points {
        let got = engine.cluster(p);
        let want = index.cluster_with(p, BorderAssignment::MostSimilar);
        assert_eq!(
            *got.clustering, want,
            "evicted entry recomputed wrong at {p:?}"
        );
    }
    let stats = engine.stats();
    assert!(stats.cache_len <= stats.cache_capacity);
    assert!(
        stats.cache_misses > points.len() as u64,
        "capacity 2 over 9 points must evict and recompute: {stats:?}"
    );
}

#[test]
fn concurrent_in_process_queries_are_consistent() {
    let (index, engine) = build_engine(16);
    let p = QueryParams::new(3, 0.4);
    let want = index.cluster_with(p, BorderAssignment::MostSimilar);
    std::thread::scope(|s| {
        for _ in 0..6 {
            let engine = Arc::clone(&engine);
            let want = &want;
            s.spawn(move || {
                for _ in 0..10 {
                    let got = engine.cluster(p);
                    assert_eq!(*got.clustering, *want);
                }
            });
        }
    });
    assert_eq!(engine.stats().cluster_requests, 60);
}
