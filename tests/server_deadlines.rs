//! Deadline, watchdog, and idle-reaper torture for the reactor server,
//! plus the bounded coalescer-abandonment test (relocated here from the
//! engine's unit tests: it arms the process-global failpoint registry,
//! so it needs a test binary whose other tests never run an in-process
//! engine concurrently).
//!
//! The serving tests drive the *real* binary (`CARGO_BIN_EXE_parscan`)
//! with the resilience flags; worker occupancy is made deterministic by
//! `LOAD`ing a named pipe (the fifo handshake proves the worker is
//! parked inside the read — no sleeps calibrated against build speed).

use parscan::prelude::*;
use parscan::server::CoalesceAbandoned;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    fn spawn(args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_parscan"))
            .arg("serve")
            .args(args)
            .args(["--port", "0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn parscan serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before its banner")
                .expect("read banner");
            if let Some(rest) = line.split(" on ").nth(1) {
                if line.starts_with("serving") {
                    let addr = rest.split_whitespace().next().expect("addr token");
                    break addr.parse().expect("parse addr");
                }
            }
        };
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn kill(mut self) {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
    }
}

fn temp_graph(name: &str, n: usize, seed: u64) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("parscan-ddl-{}-{name}.txt", std::process::id()));
    let (g, _) = parscan::graph::generators::planted_partition(n, 4, 9.0, 1.0, seed);
    parscan::graph::io::write_edge_list_text(&g, path.to_str().unwrap()).unwrap();
    path
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let mut delay = Duration::from_millis(10);
    for _ in 0..6 {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            return BufReader::new(stream);
        }
        std::thread::sleep(delay);
        delay *= 2;
    }
    let stream = TcpStream::connect(addr).expect("connect after retries");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    BufReader::new(stream)
}

fn ask(session: &mut BufReader<TcpStream>, line: &str) {
    session
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
}

fn answer(session: &mut BufReader<TcpStream>) -> String {
    let mut response = String::new();
    session.read_line(&mut response).expect("read response");
    assert!(
        response.ends_with('\n'),
        "connection closed mid-stream: {response:?}"
    );
    response
}

/// Pull `"name":N` out of a STATS line.
fn counter(stats: &str, name: &str) -> u64 {
    stats
        .split(&format!("\"{name}\":"))
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no {name} counter in {stats}"))
}

/// An edge list served through a named pipe: `LOAD`ing it parks the
/// worker inside the file read until the write end is fed and closed.
struct FifoGraph {
    path: std::path::PathBuf,
}

impl FifoGraph {
    fn new(tag: &str) -> FifoGraph {
        let path =
            std::env::temp_dir().join(format!("parscan-ddl-{}-{tag}.fifo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let status = std::process::Command::new("mkfifo")
            .arg(&path)
            .status()
            .expect("run mkfifo");
        assert!(status.success(), "mkfifo {path:?} failed");
        FifoGraph { path }
    }

    fn path(&self) -> &str {
        self.path.to_str().unwrap()
    }

    /// Opening the write end blocks until the serving worker has opened
    /// the read end — when this returns, the worker is provably parked.
    fn handshake(&self) -> std::fs::File {
        std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .expect("open fifo writer")
    }

    fn release(mut writer: std::fs::File) {
        writer
            .write_all(b"0 1\n1 2\n2 0\n0 3\n3 1\n")
            .expect("feed fifo");
    }
}

impl Drop for FifoGraph {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[test]
fn deadlines_expire_queued_and_in_flight_requests_with_a_typed_retryable_error() {
    let graph = temp_graph("deadline", 200, 5);
    let fifo = FifoGraph::new("deadline");
    let server = ServerProc::spawn(&[
        graph.to_str().unwrap(),
        "--workers",
        "1",
        "--deadline-ms",
        "300",
    ]);

    // Park the only worker inside a LOAD...
    let mut blocker = connect(server.addr);
    ask(&mut blocker, &format!("LOAD slow {}", fifo.path()));
    let writer = fifo.handshake();
    // ...and queue a CLUSTER behind it. Neither can execute before the
    // 300ms deadline, so both must come back as typed retryable errors
    // instead of hanging for as long as the blockage lasts.
    let mut victim = connect(server.addr);
    let queued_at = Instant::now();
    ask(&mut victim, "CLUSTER 3 0.4");

    let response = answer(&mut victim);
    let waited = queued_at.elapsed();
    assert!(
        response.contains(r#""retryable":true"#) && response.contains(r#""reason":"deadline""#),
        "queued request should expire with a typed error: {response}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "deadline response took {waited:?}, not bounded by deadline + sweep tick"
    );
    let response = answer(&mut blocker);
    assert!(
        response.contains(r#""retryable":true"#) && response.contains(r#""reason":"deadline""#),
        "in-flight request should expire with a typed error: {response}"
    );

    // Unpark the worker: its late LOAD result is discarded (the
    // connection was already answered), and both connections are still
    // working sessions that can retry successfully.
    FifoGraph::release(writer);
    std::thread::sleep(Duration::from_millis(200));
    ask(&mut victim, "CLUSTER 3 0.4");
    let retried = answer(&mut victim);
    assert!(
        retried.contains(r#""ok":true"#) && retried.contains(r#""op":"cluster""#),
        "retry after the blockage cleared must succeed: {retried}"
    );
    ask(&mut blocker, "PING");
    assert!(answer(&mut blocker).contains("pong"));

    // The ledger saw both expiries.
    ask(&mut victim, "STATS");
    let stats = answer(&mut victim);
    assert!(
        counter(&stats, "deadline_expired") >= 2,
        "expected both expiries counted: {stats}"
    );

    server.kill();
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn idle_connections_are_reaped_on_the_poll_tick() {
    let graph = temp_graph("idle", 200, 6);
    let server = ServerProc::spawn(&[graph.to_str().unwrap(), "--idle-timeout", "300"]);

    // A working session that then goes quiet: the server closes it.
    let mut idle = connect(server.addr);
    ask(&mut idle, "PING");
    assert!(answer(&mut idle).contains("pong"));
    let mut line = String::new();
    let n = idle.read_line(&mut line).expect("read EOF from reaper");
    assert_eq!(n, 0, "idle connection should see EOF, got {line:?}");

    // A fresh session (active well inside the timeout) sees the reap in
    // STATS and is itself still served.
    let mut active = connect(server.addr);
    ask(&mut active, "STATS");
    let stats = answer(&mut active);
    assert!(
        counter(&stats, "idle_reaped") >= 1,
        "reap must be counted: {stats}"
    );

    server.kill();
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn watchdog_gauges_stuck_workers_and_recovers() {
    let graph = temp_graph("watchdog", 200, 7);
    let fifo = FifoGraph::new("watchdog");
    // Two workers: one gets stuck, the other keeps STATS observable.
    let server = ServerProc::spawn(&[
        graph.to_str().unwrap(),
        "--workers",
        "2",
        "--watchdog-ms",
        "200",
    ]);

    let mut blocker = connect(server.addr);
    ask(&mut blocker, &format!("LOAD slow {}", fifo.path()));
    let writer = fifo.handshake();
    std::thread::sleep(Duration::from_millis(600));

    let mut observer = connect(server.addr);
    ask(&mut observer, "STATS");
    let stats = answer(&mut observer);
    assert_eq!(
        counter(&stats, "stuck_workers"),
        1,
        "one parked worker past the threshold: {stats}"
    );
    assert!(
        counter(&stats, "watchdog_trips") >= 1,
        "the episode must be counted: {stats}"
    );

    // Unpark: the gauge returns to zero, the trip count stays.
    FifoGraph::release(writer);
    assert!(answer(&mut blocker).contains(r#""op":"load""#));
    std::thread::sleep(Duration::from_millis(300));
    ask(&mut observer, "STATS");
    let stats = answer(&mut observer);
    assert_eq!(counter(&stats, "stuck_workers"), 0, "{stats}");
    assert!(counter(&stats, "watchdog_trips") >= 1, "{stats}");

    server.kill();
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn saturated_watchdog_sheds_new_work_until_workers_recover() {
    let graph = temp_graph("wd-shed", 200, 8);
    let fifo = FifoGraph::new("wd-shed");
    let server = ServerProc::spawn(&[
        graph.to_str().unwrap(),
        "--workers",
        "1",
        "--watchdog-ms",
        "200",
    ]);

    let mut blocker = connect(server.addr);
    ask(&mut blocker, &format!("LOAD slow {}", fifo.path()));
    let writer = fifo.handshake();
    std::thread::sleep(Duration::from_millis(600));

    // Every worker (the only one) is stuck: new work sheds immediately
    // with the watchdog's message rather than queueing behind a corpse.
    let mut probe = connect(server.addr);
    ask(&mut probe, "PING");
    let response = answer(&mut probe);
    assert!(
        response.contains(r#""op":"shed""#) && response.contains("stuck"),
        "expected a watchdog shed: {response}"
    );

    // Recovery: feed the pipe, the worker finishes, the same probe
    // connection is admitted again.
    FifoGraph::release(writer);
    assert!(answer(&mut blocker).contains(r#""op":"load""#));
    std::thread::sleep(Duration::from_millis(300));
    ask(&mut probe, "PING");
    assert!(answer(&mut probe).contains("pong"));

    server.kill();
    let _ = std::fs::remove_file(&graph);
}

/// The bounded coalescer-abandonment path, driven in-process: with
/// `engine.compute` armed to always panic, every coalescing leader dies,
/// followers retry at most [`MAX_LEADER_RETRIES`] times, and each caller
/// either observes the leader panic itself or gets the typed
/// [`CoalesceAbandoned`] error — never an `Ok`, and never an unbounded
/// retry convoy (this test *finishing* is the boundedness proof).
#[test]
fn always_panicking_leaders_abandon_with_a_typed_retryable_error() {
    let (g, _) = parscan::graph::generators::planted_partition(200, 4, 9.0, 1.0, 11);
    let engine = Arc::new(QueryEngine::new(
        Arc::new(ScanIndex::build(g, IndexConfig::default())),
        EngineConfig::default(),
    ));

    failpoint::configure("engine.compute", "panic").unwrap();
    let barrier = Arc::new(Barrier::new(8));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            catch_unwind(AssertUnwindSafe(|| {
                engine.try_cluster(QueryParams::new(3, 0.4))
            }))
        }));
    }
    let mut panicked_leaders = 0u64;
    let mut abandoned = 0u64;
    for handle in handles {
        match handle.join().expect("thread join") {
            Err(_) => panicked_leaders += 1,
            Ok(Err(CoalesceAbandoned)) => abandoned += 1,
            Ok(Ok(_)) => panic!("a cluster succeeded while compute always panics"),
        }
    }
    failpoint::remove("engine.compute");
    assert_eq!(panicked_leaders + abandoned, 8);
    assert!(panicked_leaders >= 1, "someone must have led");
    if abandoned > 0 {
        assert!(
            CoalesceAbandoned.to_string().contains("retry"),
            "the typed error must tell the client to retry"
        );
    }

    // The engine is fully healthy afterwards: the in-flight table holds
    // no corpses and a clean request computes.
    let outcome = engine.cluster(QueryParams::new(3, 0.4));
    assert!(!outcome.cached);

    // Ledger: every request was counted; hits+misses misses exactly the
    // requests whose leader panicked before recording an outcome (the
    // final clean request is the +1 miss).
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses + panicked_leaders,
        stats.cluster_requests,
        "{stats:?}"
    );
}
