//! Integration tests for multi-graph serving: one `parscan serve`
//! process hosting several resident indexes, managed over the wire with
//! `LOAD`/`UNLOAD`/`LIST`, addressed per-query with `@name`, and
//! evicting under a configured byte budget — all through the public
//! facade, exactly as an external client would drive it.

use parscan::prelude::*;
use parscan::server::serve;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// A line-oriented test client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        response
    }
}

fn graph_file(name: &str, n: usize, communities: usize, seed: u64) -> (PathBuf, CsrGraph) {
    let (g, _) = parscan::graph::generators::planted_partition(n, communities, 8.0, 1.0, seed);
    let path = std::env::temp_dir().join(format!(
        "parscan-multigraph-{}-{name}.txt",
        std::process::id()
    ));
    parscan::graph::io::write_edge_list_text(&g, path.to_str().unwrap()).expect("write graph");
    (path, g)
}

fn boot_registry(byte_budget: Option<usize>) -> (Arc<GraphRegistry>, CsrGraph) {
    let (g, _) = parscan::graph::generators::planted_partition(300, 4, 9.0, 1.0, 42);
    let registry = Arc::new(GraphRegistry::new(
        "boot",
        RegistryConfig {
            byte_budget,
            ..Default::default()
        },
    ));
    registry
        .install("boot", ScanIndex::build(g.clone(), IndexConfig::default()))
        .expect("boot graph admits");
    (registry, g)
}

#[test]
fn load_list_query_by_name_round_trip() {
    let (registry, _) = boot_registry(None);
    let server = serve(registry, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr());

    // One graph at boot.
    let list = client.request("LIST");
    assert!(list.contains(r#""op":"list""#), "{list}");
    assert!(list.contains(r#""default":"boot""#), "{list}");
    assert_eq!(list.matches(r#""name":"#).count(), 1, "{list}");

    // LOAD a second graph from a server-local file.
    let (path, g2) = graph_file("second", 180, 3, 7);
    let loaded = client.request(&format!("LOAD second {}", path.display()));
    assert!(loaded.contains(r#""op":"load""#), "{loaded}");
    assert!(loaded.contains(r#""status":"loaded""#), "{loaded}");
    assert!(loaded.contains(r#""graph":"second""#), "{loaded}");
    assert!(
        loaded.contains(&format!(r#""n":{}"#, g2.num_vertices())),
        "{loaded}"
    );

    // Now the process demonstrably hosts two graphs.
    let list = client.request("LIST");
    assert_eq!(list.matches(r#""name":"#).count(), 2, "{list}");
    assert!(list.contains(r#""name":"boot""#) && list.contains(r#""name":"second""#));

    // Addressed query answers from the *named* graph and matches the
    // direct library call bit for bit.
    let direct = ScanIndex::build(g2, IndexConfig::default())
        .cluster_with(QueryParams::new(3, 0.4), BorderAssignment::MostSimilar);
    let response = client.request("@second CLUSTER 3 0.4");
    assert!(response.contains(r#""ok":true"#), "{response}");
    assert!(response.contains(r#""graph":"second""#), "{response}");
    assert!(
        response.contains(&format!(r#""clusters":{}"#, direct.num_clusters())),
        "{response} vs {} clusters",
        direct.num_clusters()
    );
    // Unaddressed queries still hit the boot graph.
    let response = client.request("CLUSTER 3 0.4");
    assert!(response.contains(r#""graph":"boot""#), "{response}");

    // Per-graph stats address the named engine.
    let stats = client.request("@second STATS");
    assert!(stats.contains(r#""graph":"second""#), "{stats}");
    assert!(stats.contains(r#""registry""#), "{stats}");

    // A second LOAD of the same name is acknowledged without rebuilding.
    let again = client.request(&format!("LOAD second {}", path.display()));
    assert!(again.contains(r#""status":"already_loaded""#), "{again}");

    // UNLOAD removes it; addressed queries then fail cleanly.
    let unloaded = client.request("UNLOAD second");
    assert!(unloaded.contains(r#""op":"unload""#), "{unloaded}");
    let err = client.request("@second CLUSTER 3 0.4");
    assert!(err.contains(r#""ok":false"#), "{err}");
    assert!(err.contains("second"), "{err}");
    let err = client.request("UNLOAD second");
    assert!(err.contains(r#""ok":false"#), "{err}");

    // Explicitly addressed STATS for the unloaded graph errors too —
    // top-level and inside a batch alike.
    let err = client.request("@second STATS");
    assert!(err.contains(r#""ok":false"#), "{err}");
    let batch = client.request("BATCH @second STATS ; PING");
    assert!(batch.contains(r#""ok":false"#), "{batch}");
    assert!(batch.contains(r#""op":"pong""#), "{batch}");

    // Bad LOADs are errors, not session killers.
    let err = client.request("LOAD broken /no/such/file.txt");
    assert!(err.contains(r#""ok":false"#), "{err}");
    assert!(client.request("PING").contains("pong"));

    client.request("QUIT");
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn byte_budget_evicts_over_the_wire() {
    // Budget sized for the boot graph plus roughly one 300-vertex
    // extra: loading two extras must evict the older one (the pinned
    // boot graph survives).
    let boot_bytes = {
        let (g, _) = parscan::graph::generators::planted_partition(300, 4, 9.0, 1.0, 42);
        ScanIndex::build(g, IndexConfig::default()).memory_bytes()
    };
    let (registry, _) = boot_registry(Some(boot_bytes * 5 / 2));
    let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr());

    let (path_a, _) = graph_file("evict-a", 300, 4, 1);
    let (path_b, _) = graph_file("evict-b", 300, 4, 2);
    assert!(client
        .request(&format!("LOAD a {}", path_a.display()))
        .contains(r#""status":"loaded""#));
    assert!(client
        .request(&format!("LOAD b {}", path_b.display()))
        .contains(r#""status":"loaded""#));

    let list = client.request("LIST");
    assert!(list.contains(r#""name":"boot""#), "boot is pinned: {list}");
    assert!(list.contains(r#""name":"b""#), "newest survives: {list}");
    assert!(
        !list.contains(r#""name":"a""#),
        "LRU must be evicted: {list}"
    );

    let stats = client.request("STATS");
    assert!(stats.contains(r#""evictions":1"#), "{stats}");
    assert_eq!(registry.stats().evictions, 1);
    assert!(registry.stats().bytes_resident <= boot_bytes * 5 / 2);

    client.request("QUIT");
    server.shutdown();
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
}

#[test]
fn persisted_index_loads_by_extension() {
    let (registry, _) = boot_registry(None);
    let (g, _) = parscan::graph::generators::planted_partition(150, 3, 8.0, 1.0, 9);
    let index = ScanIndex::build(g, IndexConfig::default());
    let path =
        std::env::temp_dir().join(format!("parscan-multigraph-{}.pscidx", std::process::id()));
    index.save(path.to_str().unwrap()).expect("save index");

    let server = serve(registry, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr());
    let loaded = client.request(&format!("LOAD persisted {}", path.display()));
    assert!(loaded.contains(r#""status":"loaded""#), "{loaded}");
    assert!(loaded.contains(r#""n":150"#), "{loaded}");
    let probe = client.request("@persisted PROBE 0 2 0.4");
    assert!(probe.contains(r#""op":"probe""#), "{probe}");
    assert!(probe.contains(r#""graph":"persisted""#), "{probe}");

    // Batches can mix graphs; responses carry the canonical name.
    let batch = client.request("BATCH @persisted CLUSTER 2 0.3 ; CLUSTER 2 0.3 ; LIST");
    assert!(batch.contains(r#""graph":"persisted""#), "{batch}");
    assert!(batch.contains(r#""graph":"boot""#), "{batch}");
    assert!(batch.contains(r#""op":"list""#), "{batch}");

    client.request("QUIT");
    server.shutdown();
    let _ = std::fs::remove_file(path);
}
