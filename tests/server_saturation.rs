//! Saturation tests for the reactor-based server: 10k+ simultaneously
//! open sessions held by a bounded thread count, correct responses under
//! a hot query mix, and admission control that sheds — with a typed
//! response, never a hang — past the configured connection and queue
//! limits.
//!
//! The big-session test drives the *real* binary
//! (`CARGO_BIN_EXE_parscan`) so the thread-count assertion reads
//! `/proc/<pid>/status` of an honest process. Set `SATURATION_SESSIONS`
//! to lower the target on constrained runners (CI uses 2000); the
//! default is 10000.

use parscan::prelude::*;
use parscan::server::{serve_with_config, GraphRegistry, RegistryConfig, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

fn session_target() -> usize {
    std::env::var("SATURATION_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    fn spawn(args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_parscan"))
            .arg("serve")
            .args(args)
            .args(["--port", "0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn parscan serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before its banner")
                .expect("read banner");
            // "serving 1 graph(s) on 127.0.0.1:PORT (~0 MiB resident...".
            if let Some(rest) = line.split(" on ").nth(1) {
                if line.starts_with("serving") {
                    let addr = rest.split_whitespace().next().expect("addr token");
                    break addr.parse().expect("parse addr");
                }
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    /// Kernel-reported thread count of the serving process.
    fn thread_count(&self) -> usize {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .expect("read /proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count")
    }

    fn kill(mut self) {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
    }
}

fn temp_graph(name: &str, n: usize, seed: u64) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("parscan-sat-{}-{name}.txt", std::process::id()));
    let (g, _) = parscan::graph::generators::planted_partition(n, 4, 9.0, 1.0, seed);
    parscan::graph::io::write_edge_list_text(&g, path.to_str().unwrap()).unwrap();
    path
}

/// Connect with retries: a burst of thousands of connects can outrun the
/// listener backlog while the reactor drains it.
fn connect(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_millis(10);
    for _ in 0..6 {
        if let Ok(stream) = TcpStream::connect(addr) {
            return stream;
        }
        std::thread::sleep(delay);
        delay *= 2;
    }
    TcpStream::connect(addr).expect("connect after retries")
}

/// One buffered session. Writes go through `get_mut()` (BufReader only
/// buffers reads), so each session costs exactly one fd — which is what
/// lets one test process hold 10k of them under a 20k fd limit.
fn ask(session: &mut BufReader<TcpStream>, line: &str) {
    session
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
}

fn answer(session: &mut BufReader<TcpStream>) -> String {
    let mut response = String::new();
    session.read_line(&mut response).expect("read response");
    assert!(
        response.ends_with('\n'),
        "connection closed mid-stream: {response:?}"
    );
    response
}

#[test]
fn ten_thousand_sessions_on_a_bounded_thread_count() {
    let sessions = session_target();
    let graph = temp_graph("big", 400, 7);
    // A queue bound above the session count: this test measures
    // session-holding, so the mass-PING volley must not trip admission
    // control (the shed tests below exercise that deliberately).
    let server = ServerProc::spawn(&[graph.to_str().unwrap(), "--cache", "64", "--queue", "20000"]);

    // Open every session up front and keep them all.
    let mut conns: Vec<BufReader<TcpStream>> = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let stream = connect(server.addr);
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        conns.push(BufReader::new(stream));
        // Brief pauses keep the connect burst inside the accept backlog.
        if i % 100 == 99 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Hot mix on a 1-in-50 subset while the rest sit idle: clusters
    // (cache hits and misses), stats, pings.
    for (i, session) in conns.iter_mut().enumerate().filter(|(i, _)| i % 50 == 0) {
        let request = match (i / 50) % 3 {
            0 => "CLUSTER 3 0.4",
            1 => "STATS",
            _ => "PING",
        };
        ask(session, request);
    }
    for (i, session) in conns.iter_mut().enumerate().filter(|(i, _)| i % 50 == 0) {
        let response = answer(session);
        assert!(
            response.contains(r#""ok":true"#),
            "hot-mix response {i}: {response}"
        );
    }

    // The tentpole claim: every session above is simultaneously open,
    // yet the server runs on a fixed handful of threads, not one per
    // connection.
    let threads = server.thread_count();
    assert!(
        threads < 64,
        "expected a bounded thread count with {sessions} open sessions, got {threads}"
    );

    // The gauge agrees that all sessions are registered at once.
    let stats = {
        let session = &mut conns[1];
        ask(session, "STATS");
        answer(session)
    };
    let gauge = stats
        .split(r#""reactor":{"connections":"#)
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or_else(|| panic!("no reactor gauge in {stats}"));
    assert!(
        gauge >= sessions,
        "reactor reports {gauge} connections, expected at least {sessions}"
    );

    // Every single session is still live and answers correctly:
    // write-all then read-all, so the server holds them concurrently.
    for session in conns.iter_mut() {
        ask(session, "PING");
    }
    for (i, session) in conns.iter_mut().enumerate() {
        let response = answer(session);
        assert_eq!(
            response.trim(),
            r#"{"ok":true,"op":"pong"}"#,
            "session {i} of {sessions}"
        );
    }

    server.kill();
    let _ = std::fs::remove_file(&graph);
}

/// An edge list served through a named pipe: a `LOAD` of this path
/// parks the worker inside the file read until the test feeds and
/// closes the write end. That makes worker occupancy *deterministic* —
/// no sleep calibrated against build speed, so the shed tests hold in
/// debug and release alike.
struct FifoGraph {
    path: std::path::PathBuf,
}

impl FifoGraph {
    fn new(tag: &str) -> FifoGraph {
        let path =
            std::env::temp_dir().join(format!("parscan-sat-{}-{tag}.fifo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let status = std::process::Command::new("mkfifo")
            .arg(&path)
            .status()
            .expect("run mkfifo");
        assert!(status.success(), "mkfifo {path:?} failed");
        FifoGraph { path }
    }

    fn path(&self) -> &str {
        self.path.to_str().unwrap()
    }

    /// Rendezvous: opening the write end blocks until the serving
    /// worker has opened the read end — when this returns, the worker
    /// is provably parked inside the `LOAD`.
    fn handshake(&self) -> std::fs::File {
        std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .expect("open fifo writer")
    }

    /// Feed a tiny valid edge list and close: the parked `LOAD` sees
    /// EOF, parses, builds, and answers.
    fn release(mut writer: std::fs::File) {
        writer
            .write_all(b"0 1\n1 2\n2 0\n0 3\n3 1\n")
            .expect("feed fifo");
    }
}

impl Drop for FifoGraph {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn small_registry(n: usize, seed: u64) -> Arc<GraphRegistry> {
    let (g, _) = parscan::graph::generators::planted_partition(n, 4, 9.0, 1.0, seed);
    let registry = Arc::new(GraphRegistry::new("default", RegistryConfig::default()));
    registry
        .install("default", ScanIndex::build(g, IndexConfig::default()))
        .unwrap();
    registry
}

#[test]
fn connection_limit_sheds_with_a_typed_response() {
    let server = serve_with_config(
        small_registry(120, 3),
        "127.0.0.1:0",
        ServeConfig {
            max_connections: 8,
            ..Default::default()
        },
    )
    .expect("bind");

    // Fill the connection budget and prove each slot is registered (a
    // PING roundtrip means the reactor completed the accept).
    let mut held = Vec::new();
    for _ in 0..8 {
        let mut session = BufReader::new(connect(server.addr()));
        session
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        ask(&mut session, "PING");
        assert!(answer(&mut session).contains("pong"));
        held.push(session);
    }

    // The 9th connection gets a typed shed line, then EOF — not a hang,
    // not a silent reset.
    let mut rejected = BufReader::new(connect(server.addr()));
    rejected
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    rejected.read_line(&mut line).expect("read shed line");
    assert!(
        line.contains(r#""op":"shed""#) && line.contains("connection limit"),
        "{line}"
    );
    line.clear();
    assert_eq!(rejected.read_line(&mut line).expect("read EOF"), 0);

    // The shed shows up in STATS, and held sessions still work.
    ask(&mut held[0], "STATS");
    let stats = answer(&mut held[0]);
    assert!(stats.contains(r#""shed_connections":1"#), "{stats}");

    // Freeing a slot readmits new connections.
    ask(&mut held[7], "QUIT");
    assert!(answer(&mut held[7]).contains("bye"));
    held.pop();
    std::thread::sleep(Duration::from_millis(200));
    let mut readmitted = BufReader::new(connect(server.addr()));
    readmitted
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    ask(&mut readmitted, "PING");
    assert!(answer(&mut readmitted).contains("pong"));

    server.shutdown();
}

#[test]
fn queue_overflow_sheds_requests_without_hanging_in_flight_work() {
    // One worker and a one-slot queue: a LOAD parked on a named pipe
    // occupies the worker, a second LOAD fills the queue, and every
    // request after that must shed immediately.
    let fifo_a = FifoGraph::new("queue-a");
    let fifo_b = FifoGraph::new("queue-b");
    let server = serve_with_config(
        small_registry(120, 9),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_limit: 1,
            ..Default::default()
        },
    )
    .expect("bind");

    let mut slow_a = BufReader::new(connect(server.addr()));
    let mut slow_b = BufReader::new(connect(server.addr()));
    for s in [&mut slow_a, &mut slow_b] {
        s.get_ref()
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
    }
    // Occupy the worker; the handshake returns only once it is parked.
    ask(&mut slow_a, &format!("LOAD biga {}", fifo_a.path()));
    let writer_a = fifo_a.handshake();
    // Fill the queue behind it. The pause only covers the reactor's
    // enqueue of an already-received line, not any computation.
    ask(&mut slow_b, &format!("LOAD bigb {}", fifo_b.path()));
    std::thread::sleep(Duration::from_millis(200));

    // Saturated: new requests shed with the typed response, instantly.
    let mut shed_seen = 0;
    for i in 0..5 {
        let mut probe = BufReader::new(connect(server.addr()));
        probe
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        ask(&mut probe, "PING");
        let response = answer(&mut probe);
        assert!(
            response.contains(r#""op":"shed""#) && response.contains("queue at limit"),
            "probe {i} was not shed while worker and queue were full: {response}"
        );
        shed_seen += 1;
    }

    // Nothing hangs: both in-flight loads complete with real answers
    // once the pipes are fed.
    FifoGraph::release(writer_a);
    let response = answer(&mut slow_a);
    assert!(
        response.contains(r#""op":"load""#) && response.contains(r#""ok":true"#),
        "load a: {response}"
    );
    FifoGraph::release(fifo_b.handshake());
    let response = answer(&mut slow_b);
    assert!(
        response.contains(r#""op":"load""#) && response.contains(r#""ok":true"#),
        "load b: {response}"
    );

    // And the ledger knows about the sheds.
    ask(&mut slow_a, "STATS");
    let stats = answer(&mut slow_a);
    let shed = stats
        .split(r#""shed_requests":"#)
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no shed_requests in {stats}"));
    assert!(shed >= shed_seen, "{stats}");

    server.shutdown();
}

#[test]
fn pipelined_sheds_preserve_response_order() {
    // A saturated server answering a pipelined connection must keep
    // responses in request order even when some of them are sheds.
    let fifo_a = FifoGraph::new("pipe-a");
    let fifo_b = FifoGraph::new("pipe-b");
    let server = serve_with_config(
        small_registry(120, 4),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_limit: 1,
            ..Default::default()
        },
    )
    .expect("bind");

    // Occupy the worker (the fifo handshake proves it is parked) and
    // fill the queue so a fresh connection's submissions must shed.
    let mut blocker_a = BufReader::new(connect(server.addr()));
    let mut blocker_b = BufReader::new(connect(server.addr()));
    for s in [&mut blocker_a, &mut blocker_b] {
        s.get_ref()
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
    }
    ask(&mut blocker_a, &format!("LOAD biga {}", fifo_a.path()));
    let writer_a = fifo_a.handshake();
    ask(&mut blocker_b, &format!("LOAD bigb {}", fifo_b.path()));
    std::thread::sleep(Duration::from_millis(200));

    // One connection pipelines three requests into the saturated server:
    // three shed responses come back, in order, on the same connection.
    let mut pipelined = BufReader::new(connect(server.addr()));
    pipelined
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    pipelined
        .get_mut()
        .write_all(b"PING\nPING\nPING\n")
        .expect("pipelined write");
    for i in 0..3 {
        let response = answer(&mut pipelined);
        assert!(
            response.contains(r#""op":"shed""#),
            "pipelined response {i}: {response}"
        );
    }

    // Both loads complete, and the connection that was shed is still a
    // working session afterwards — with responses still in order.
    FifoGraph::release(writer_a);
    assert!(answer(&mut blocker_a).contains(r#""op":"load""#));
    FifoGraph::release(fifo_b.handshake());
    assert!(answer(&mut blocker_b).contains(r#""op":"load""#));
    ask(&mut pipelined, "PING");
    assert!(answer(&mut pipelined).contains(r#""op":"pong""#));

    server.shutdown();
}
