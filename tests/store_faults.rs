//! Crash-consistency torture for the durable store under injected
//! faults.
//!
//! Every test arms one or more named failpoints (the `failpoint` compat
//! crate's process-global registry), drives a store operation into the
//! fault, and then asserts the invariant the store promises: **a failed
//! or killed `SAVE`/`FORGET` leaves the previous manifest generation and
//! its snapshots fully servable**, both in the live process and after a
//! cold reopen from disk.
//!
//! The failpoint registry is process-global and `cargo test` runs test
//! functions on parallel threads, so every test takes the `FAULT_LOCK`
//! mutex and disarms its sites before releasing it.

use parscan::prelude::*;
use parscan::store::{manifest, AuditKind, IndexStore, ManifestEntry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that arm the process-global failpoint registry.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: holds the fault lock and disarms everything on drop so a
/// failing assertion cannot leak an armed failpoint into the next test.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn new() -> FaultGuard {
        failpoint::clear();
        FaultGuard(fault_lock())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "parscan-store-faults-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_index(seed: u64) -> ScanIndex {
    let (g, _) = parscan::graph::generators::planted_partition(120, 4, 8.0, 1.0, seed);
    ScanIndex::build(g, IndexConfig::default())
}

/// Names a manifest generation compactly for assertions: sorted
/// `name:bytes` pairs.
fn fingerprint(entries: &[ManifestEntry]) -> Vec<String> {
    let mut v: Vec<String> = entries
        .iter()
        .map(|e| format!("{}:{}", e.name, e.bytes))
        .collect();
    v.sort();
    v
}

/// Asserts a store directory cold-opens to exactly `expect` and that
/// every entry's snapshot loads.
fn assert_reopens_to(dir: &PathBuf, expect: &[String]) {
    let reopened = IndexStore::open(dir).expect("store must reopen after a failed operation");
    assert_eq!(fingerprint(&reopened.entries()), expect);
    for entry in reopened.entries() {
        let (index, _) = reopened
            .load(&entry.name)
            .expect("every manifest entry must load after recovery");
        assert!(index.graph().num_vertices() > 0);
    }
}

/// Every failpoint a SAVE can die at. The first five fire inside
/// `atomic_write` (snapshot bytes, then again for the manifest rewrite);
/// the `store.*`/`manifest.*` sites bracket the higher-level ordering.
const SAVE_SITES: &[&str] = &[
    "store.save.snapshot",
    "persist.create",
    "persist.write",
    "persist.sync",
    "persist.rename",
    "persist.dirsync",
    "store.save.manifest",
    "manifest.write",
];

#[test]
fn error_at_every_save_failpoint_preserves_previous_generation() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("error-sweep");
    let store = IndexStore::open(&dir).unwrap();
    store.save("alpha", &small_index(1), false, 64).unwrap();
    store.save("beta", &small_index(2), true, 32).unwrap();
    let gen1 = fingerprint(&store.entries());
    let mut failed_saves = 0;

    for site in SAVE_SITES {
        failpoint::configure(site, "error").unwrap();
        let err = store
            .save("alpha", &small_index(3), false, 64)
            .expect_err(&format!("save must fail with {site} armed"));
        assert!(
            err.to_string().contains("injected"),
            "{site}: error should be the injected one, got: {err}"
        );
        failpoint::remove(site);
        failed_saves += 1;

        // The live process still serves generation 1...
        assert_eq!(
            fingerprint(&store.entries()),
            gen1,
            "{site}: in-memory manifest must not advance past a failed write"
        );
        store.load("alpha").expect("previous snapshot must load");
        // ...and so does a cold restart.
        assert_reopens_to(&dir, &gen1);
    }
    assert_eq!(store.io_error_count(), failed_saves);

    // With the faults gone the same save goes through and both memory
    // and disk advance together.
    store.save("alpha", &small_index(3), false, 64).unwrap();
    let gen2 = fingerprint(&store.entries());
    assert_ne!(gen1, gen2);
    assert_reopens_to(&dir, &gen2);
}

#[test]
fn enospc_is_surfaced_as_a_typed_out_of_space_error() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("enospc");
    let store = IndexStore::open(&dir).unwrap();
    store.save("g", &small_index(4), false, 64).unwrap();
    let gen1 = fingerprint(&store.entries());

    failpoint::configure("persist.write", "enospc").unwrap();
    let err = store.save("g", &small_index(5), false, 64).unwrap_err();
    failpoint::remove("persist.write");
    assert_eq!(err.raw_os_error(), Some(28), "want ENOSPC, got {err:?}");
    assert_eq!(fingerprint(&store.entries()), gen1);
    assert_reopens_to(&dir, &gen1);
}

#[test]
fn short_writes_tear_the_temp_file_never_the_snapshot() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("short-write");
    let store = IndexStore::open(&dir).unwrap();
    store.save("g", &small_index(6), false, 64).unwrap();
    let gen1 = fingerprint(&store.entries());

    // Tear the write at several prefix lengths: the header, mid-body,
    // and one byte shy of complete.
    let full = store.entry("g").unwrap().bytes as usize;
    for accept in [0, 8, full / 2, full.saturating_sub(1)] {
        failpoint::configure("persist.write", &format!("short({accept})")).unwrap();
        let err = store.save("g", &small_index(6), false, 64).unwrap_err();
        assert!(err.to_string().contains("short write"), "got {err}");
        failpoint::remove("persist.write");
        assert_eq!(fingerprint(&store.entries()), gen1);
        assert_reopens_to(&dir, &gen1);
    }

    // No torn temp files linger after the error path (atomic_write
    // removes its tmp on failure).
    let stray: Vec<_> = std::fs::read_dir(dir.join("snapshots"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "leftover temp files: {stray:?}");
}

#[test]
fn panic_at_every_save_failpoint_is_recoverable_like_a_kill() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("panic-sweep");
    {
        let store = IndexStore::open(&dir).unwrap();
        store.save("alpha", &small_index(7), false, 64).unwrap();
        store.save("beta", &small_index(8), true, 32).unwrap();
    }
    let gen1 = fingerprint(&IndexStore::open(&dir).unwrap().entries());

    for site in SAVE_SITES {
        // A fresh store per attempt: the panic may poison the dying
        // store's internal locks, exactly as a kill would discard them.
        let store = IndexStore::open(&dir).unwrap();
        failpoint::configure(site, "panic").unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = store.save("alpha", &small_index(9), false, 64);
        }));
        failpoint::remove(site);
        assert!(result.is_err(), "{site}: save should have panicked");
        drop(store);

        // The process "died" mid-save: whatever partial temp files are
        // on disk, a cold reopen must serve the last durable generation.
        assert_reopens_to(&dir, &gen1);
    }
}

#[test]
fn forget_failure_keeps_the_entry_and_its_snapshot() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("forget");
    let store = IndexStore::open(&dir).unwrap();
    store.save("keep", &small_index(10), false, 64).unwrap();
    store.save("drop", &small_index(11), false, 64).unwrap();
    let gen1 = fingerprint(&store.entries());

    for site in ["store.forget.manifest", "manifest.write", "persist.rename"] {
        failpoint::configure(site, "error").unwrap();
        store
            .forget("drop")
            .expect_err(&format!("forget must fail with {site} armed"));
        failpoint::remove(site);
        assert_eq!(fingerprint(&store.entries()), gen1);
        store.load("drop").expect("snapshot must survive");
        assert_reopens_to(&dir, &gen1);
    }

    // Clean forget still works and is durable.
    assert!(store.forget("drop").unwrap().is_some());
    assert_eq!(store.entries().len(), 1);
    assert_reopens_to(&dir, &fingerprint(&store.entries()));
}

#[test]
fn bounded_faults_clear_and_a_retry_succeeds() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("bounded");
    let store = IndexStore::open(&dir).unwrap();
    store.save("g", &small_index(12), false, 64).unwrap();

    // error(2): exactly two failures, then the site passes — the shape
    // a client-side retry loop sees for a transient disk error.
    failpoint::configure("persist.sync", "error(2)").unwrap();
    store.save("g", &small_index(13), false, 64).unwrap_err();
    store.save("g", &small_index(13), false, 64).unwrap_err();
    let entry = store.save("g", &small_index(13), false, 64).unwrap();
    failpoint::remove("persist.sync");
    assert_eq!(store.io_error_count(), 2);
    assert_eq!(store.entry("g").unwrap().bytes, entry.bytes);
    assert_reopens_to(&dir, &fingerprint(&store.entries()));
}

#[test]
fn audit_write_faults_never_block_saves_and_replay_skips_torn_lines() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("audit");
    let store = IndexStore::open(&dir).unwrap();

    // A SAVE whose audit append dies (full error) still succeeds — the
    // audit log is advisory, the manifest is authoritative.
    failpoint::configure("audit.append", "error(1)").unwrap();
    store.save("g", &small_index(14), false, 64).unwrap();
    assert_eq!(store.audit_failure_count(), 1);

    // A torn audit line (short write, no trailing newline) corrupts at
    // most itself plus the line that lands after it; replay skips the
    // garbage instead of erroring.
    failpoint::configure("audit.append", "short(7)").unwrap();
    store
        .record(AuditKind::Load, Some("g"), "torn")
        .expect_err("short audit write must surface as an error");
    failpoint::remove("audit.append");
    assert_eq!(store.audit_failure_count(), 2);
    store
        .record(AuditKind::Load, Some("g"), "merged-away")
        .unwrap();
    let seq = store.record(AuditKind::Save, Some("g"), "clean").unwrap();

    let events = store.replay().expect("replay must tolerate torn lines");
    assert!(
        events.iter().any(|e| e.seq == seq && e.detail == "clean"),
        "clean post-tear event must replay: {events:?}"
    );
    assert!(
        events.iter().all(|e| e.detail != "torn"),
        "torn event must not replay"
    );

    // Sequence numbers keep ascending across the tear and a reopen.
    let reopened = IndexStore::open(&dir).unwrap();
    assert!(reopened.audit_next_seq() > seq);
    let next = reopened
        .record(AuditKind::Load, None, "after-reopen")
        .unwrap();
    assert!(next > seq);
}

#[test]
fn manifest_on_disk_is_always_a_valid_generation() {
    let _guard = FaultGuard::new();
    let dir = tmp_dir("valid-manifest");
    let store = IndexStore::open(&dir).unwrap();
    store.save("g", &small_index(15), false, 64).unwrap();

    // Hammer alternating faulty/clean saves; after every single step the
    // manifest file on disk must parse with a valid checksum.
    failpoint::configure("manifest.write", "every(2)").unwrap();
    let mut failures = 0;
    for round in 0..8u64 {
        if store
            .save("g", &small_index(16 + round), false, 64)
            .is_err()
        {
            failures += 1;
        }
        let bytes = std::fs::read(dir.join("manifest.psm")).unwrap();
        manifest::parse(&bytes).expect("on-disk manifest must always be checksum-valid");
    }
    failpoint::remove("manifest.write");
    assert!(failures > 0, "every(2) should have failed some rounds");
    assert_reopens_to(&dir, &fingerprint(&store.entries()));
}
