//! Kill-and-restart durability: a `parscan serve --store-dir` process is
//! SIGKILLed mid-flight and restarted against the same store directory.
//! The restarted server must warm-boot the previous working set — same
//! graphs, same default, same query answers — without receiving a single
//! `LOAD` command, because the snapshots and the manifest survived on
//! disk.
//!
//! This drives the *real* binary (`CARGO_BIN_EXE_parscan`), not an
//! in-process server: SIGKILL through the process boundary is exactly
//! the crash the store's temp+fsync+rename discipline exists for.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawn `parscan serve` with `args`, wait for its startup banner,
    /// and parse the bound address out of it (`--port 0` lets the OS
    /// pick, so parallel test runs never collide).
    fn spawn(args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_parscan"))
            .arg("serve")
            .args(args)
            .args(["--port", "0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn parscan serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before its banner")
                .expect("read banner");
            // "serving 1 graph(s) on 127.0.0.1:PORT (~0 MiB resident...".
            if let Some(rest) = line.split(" on ").nth(1) {
                if line.starts_with("serving") {
                    let addr = rest.split_whitespace().next().expect("addr token");
                    break addr.parse().expect("parse addr");
                }
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("read");
        response
    }

    /// SIGKILL — no shutdown hooks, no flushes; the on-disk store state
    /// is whatever the durable write discipline already made true.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let _ = self.request("SHUTDOWN");
        let _ = self.child.wait();
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("parscan-restart-{}-{name}", std::process::id()))
}

#[test]
fn sigkilled_server_warm_boots_its_working_set() {
    // Two distinct graphs so the restart must restore a *set*, not one.
    let graph_a = temp_path("a.txt");
    let graph_b = temp_path("b.txt");
    let (ga, _) = parscan::graph::generators::planted_partition(300, 4, 9.0, 1.0, 11);
    let (gb, _) = parscan::graph::generators::planted_partition(200, 3, 8.0, 1.0, 22);
    parscan::graph::io::write_edge_list_text(&ga, graph_a.to_str().unwrap()).unwrap();
    parscan::graph::io::write_edge_list_text(&gb, graph_b.to_str().unwrap()).unwrap();
    let store_dir = temp_path("store");
    let _ = std::fs::remove_dir_all(&store_dir);

    // ---- First life: load, query, SAVE, then die without warning. ----
    let server = ServerProc::spawn(&[
        graph_a.to_str().unwrap(),
        "--name",
        "boot",
        "--store-dir",
        store_dir.to_str().unwrap(),
    ]);
    let side_load = server.request(&format!("LOAD side CACHE=8 {}", graph_b.to_str().unwrap()));
    assert!(side_load.contains(r#""status":"loaded""#), "{side_load}");
    let answer_boot = server.request("CLUSTER 3 0.4 FULL");
    let answer_side = server.request("@side CLUSTER 3 0.4 FULL");
    assert!(answer_boot.contains(r#""ok":true"#), "{answer_boot}");
    for save in ["SAVE", "SAVE side"] {
        let resp = server.request(save);
        assert!(resp.contains(r#""op":"save""#), "{save}: {resp}");
    }
    let list = server.request("LIST");
    assert!(
        list.contains(r#""persisted":["boot","side"]"#),
        "working set persisted before the crash: {list}"
    );
    server.kill();

    // ---- Second life: same store, no graph path, zero LOADs. ----
    let server = ServerProc::spawn(&["--store-dir", store_dir.to_str().unwrap()]);
    let list = server.request("LIST");
    assert!(
        list.contains(r#""default":"boot""#),
        "pinned manifest entry restores the default name: {list}"
    );
    for name in ["\"name\":\"boot\"", "\"name\":\"side\""] {
        assert!(list.contains(name), "{name} resident after restart: {list}");
    }
    // Identical answers to the pre-crash queries, straight from the
    // warm-booted snapshots (FULL responses carry every label, so this
    // is bitwise answer equality, not a summary check). Timing fields
    // differ run to run; compare the payload after the caching fields.
    let strip = |resp: &str| {
        let tail = resp.split("\"labels\"").nth(1).map(str::to_string);
        tail.expect("FULL response carries labels")
    };
    assert_eq!(
        strip(&server.request("CLUSTER 3 0.4 FULL")),
        strip(&answer_boot)
    );
    assert_eq!(
        strip(&server.request("@side CLUSTER 3 0.4 FULL")),
        strip(&answer_side)
    );
    // The restored per-graph engine config came from the manifest.
    let stats = server.request("@side STATS");
    assert!(stats.contains(r#""cache_capacity":8"#), "{stats}");

    // The audit log spans both lives with a strictly increasing sequence:
    // builds and saves from the first, a BOOT from the second.
    let events = parscan::store::audit::replay(&store_dir.join("audit.log")).unwrap();
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
    assert!(
        kinds.contains(&"SAVE") && kinds.contains(&"BOOT"),
        "{kinds:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&graph_a);
    let _ = std::fs::remove_file(&graph_b);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn unload_before_crash_is_respected_at_boot() {
    let graph = temp_path("u.txt");
    let (g, _) = parscan::graph::generators::planted_partition(200, 3, 8.0, 1.0, 5);
    parscan::graph::io::write_edge_list_text(&g, graph.to_str().unwrap()).unwrap();
    let store_dir = temp_path("ustore");
    let _ = std::fs::remove_dir_all(&store_dir);

    let server = ServerProc::spawn(&[
        graph.to_str().unwrap(),
        "--store-dir",
        store_dir.to_str().unwrap(),
    ]);
    server.request(&format!("LOAD gone {}", graph.to_str().unwrap()));
    server.request("SAVE");
    server.request("SAVE gone");
    // The operator explicitly forgets "gone": manifest entry and
    // snapshot go with it.
    let resp = server.request("UNLOAD gone");
    assert!(resp.contains(r#""op":"unload""#), "{resp}");
    server.kill();

    let server = ServerProc::spawn(&["--store-dir", store_dir.to_str().unwrap()]);
    let list = server.request("LIST");
    assert!(
        !list.contains("\"name\":\"gone\""),
        "UNLOADed graph must not resurrect: {list}"
    );
    assert!(list.contains("\"name\":\"default\""), "{list}");
    server.shutdown();
    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_dir_all(&store_dir);
}
